"""Vectorised NumPy replay kernels for the JETTY filter families.

The per-event loop in :class:`repro.core.stats.EventReplayer` pays the
full interpreter dispatch price — decode, probe call, hook call — for
every packed event.  On snoop-dense traces (em3d-class) that loop is the
replay bottleneck.  The replayers here consume a whole packed segment as
a NumPy ``int64`` array instead and evaluate it with shift/mask/argsort/
cumsum/bincount arithmetic, dropping into a tight Python loop only where
order-dependent LRU state genuinely requires one.

**Exactness contract.**  A vector replayer is *not* an approximation:
for every supported filter family it reproduces the oracle
(:class:`EventReplayer` driving the real filter object) bit for bit —
the same :class:`~repro.core.stats.FilterEvaluation` payload, the same
exception type, message, and flushed statistics on a safety violation or
IJ counter underflow.  The oracle-parity suite
(``tests/test_vector_replay.py``) pins this against every golden store.

Per family:

* **IJ** — fully vectorised.  A lane's counter value *before* each event
  is a grouped running sum over events hitting the same counter index:
  stable-argsort the per-event indexes (cast to ``uint16`` — severalfold
  faster than sorting ``int64`` keys), cumsum the +1/-1
  allocate/evict deltas in sorted order, and subtract each group's
  starting prefix.  Presence (``counter > 0``) at every snoop, pbit
  transitions, and underflow positions all read off that array.
* **EJ / VEJ** — the per-set LRU stacks are inherently sequential, but
  the *observable* state of a set is only the recency-ordered list of
  valid entries (way indexes are never reported and replay never
  snapshots), so each set collapses to a bounded MRU-first list and the
  loop runs over pre-extracted (block, code) Python lists with no
  per-event decode or method dispatch.  Consecutive same-set, same-block
  P0 snoops are provably pure repeat-hits (the first leaves the entry at
  MRU; the second just counts ``filtered``), so they are removed from
  the loop vectorially and counted in bulk.  The residual loop is then
  *grouped by set* with one stable argsort: sets are independent, so
  each set's items run through a tight loop with the set's stack
  hoisted to a local — no per-item set indexing.  A safety violation
  (rare, and fatal to the replay) restores the touched sets from their
  pre-span copies and re-runs the span in original order, so the
  flushed post-mortem statistics match the oracle exactly.

Every replayer *imports* the wrapped filter's current storage state at
construction (freshly built filters are empty, so the cold path is
unchanged).  This is what lets measured-region-only traces replay from
a restored fast-forward snapshot: the runner restores the warmed state
into the filter objects and the kernels pick it up from there.
* **HJ** — the IJ component is vectorised as above; its pass verdict per
  snoop feeds the exclude-component loop, which also handles HJ's
  filtered accounting.  Both ``HJ(IJ, EJ)`` and ``HJ(IJ, VEJ)`` are
  supported.

Everything else (hashed-include, null filters, oversized geometries,
subclasses) falls back to the per-event loop — selection happens in
:func:`replayer_for`, which returns ``None`` for unsupported filters.

NumPy is an optional dependency: when it is missing,
:func:`numpy_available` is ``False`` and every caller degrades to the
Python kernel.
"""

from __future__ import annotations

import hashlib

from repro.core.base import FilterEventCounts, SnoopFilter
from repro.core.exclude import ExcludeJetty
from repro.core.hybrid import HybridJetty
from repro.core.include import IncludeJetty
from repro.core.stats import (
    CoverageStats,
    FilterEvaluation,
    MARKER,
    PackedSegment,
    phases_from_marks,
)
from repro.core.vector_exclude import VectorExcludeJetty
from repro.errors import CoherenceError, ConfigurationError, FilterSafetyError

try:  # pragma: no cover - exercised via the numpy-free CI job
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Set counts / counter-index spaces above this fall back to the Python
#: kernel: the grouped-sort machinery keys on ``uint16`` set indexes
#: (sorting 16-bit keys is severalfold faster than 64-bit ones).
_MAX_INDEX_SPACE = 1 << 16


def numpy_available() -> bool:
    """True when the vector kernels can run at all."""
    return _np is not None


def replayer_for(snoop_filter: SnoopFilter, node_id: int, phase_names=()):
    """A vector replayer for ``snoop_filter``, or ``None`` to fall back.

    Selection is deliberately exact-type-based: a *subclass* of a
    supported family may override behaviour the kernels hard-code, and
    silently vectorising it would break the byte-parity contract.
    """
    if _np is None:
        return None
    kind = type(snoop_filter)
    if kind is ExcludeJetty:
        if snoop_filter.sets <= _MAX_INDEX_SPACE:
            return _ExcludeReplayer(snoop_filter, node_id, phase_names)
    elif kind is VectorExcludeJetty:
        if snoop_filter.sets <= _MAX_INDEX_SPACE:
            return _VectorExcludeReplayer(snoop_filter, node_id, phase_names)
    elif kind is IncludeJetty:
        if snoop_filter.entry_bits <= 16:
            return _IncludeReplayer(snoop_filter, node_id, phase_names)
    elif kind is HybridJetty:
        include, exclude = snoop_filter.include, snoop_filter.exclude
        if (
            type(include) is IncludeJetty
            and include.entry_bits <= 16
            and type(exclude) in (ExcludeJetty, VectorExcludeJetty)
            and exclude.sets <= _MAX_INDEX_SPACE
        ):
            return _HybridReplayer(snoop_filter, node_id, phase_names)
    return None


# ----------------------------------------------------------------------
# Shared per-span precomputation, memoised on the segment so that every
# bank replaying the same segment pays for each derived array once.
# ----------------------------------------------------------------------


def _span_stats(segment: PackedSegment, lo: int, hi: int) -> dict:
    """Kind masks, flag masks, blocks, and tallies for one span."""

    def build() -> dict:
        e = segment.array()[lo:hi]
        kind = e & 3
        snoop_m = kind == 0
        alloc_m = kind == 1
        evict_m = kind == 2
        pbit = (e & 8) != 0
        wh_m = snoop_m & ((e & 4) != 0)
        n_allocs = int(alloc_m.sum())
        n_evicts = int(evict_m.sum())
        return {
            "blocks": e >> 4,
            "snoop_m": snoop_m,
            "alloc_m": alloc_m,
            "evict_m": evict_m,
            "pbit": pbit,
            "wh_m": wh_m,
            # +1 per ALLOC, -1 per EVICT, 0 per SNOOP: the per-counter
            # running sums below are cumsums of this in sorted order.
            # int32 throughout the lane math — counters are bounded by
            # the cached-block population and spans by the segment size,
            # and the narrower lanes are measurably faster.
            "delta": alloc_m.astype(_np.int32) - evict_m,
            "n_snoops": (hi - lo) - n_allocs - n_evicts,
            "n_would_hit": int(wh_m.sum()),
            "n_allocs": n_allocs,
            "n_evicts": n_evicts,
        }

    return segment.shared(("span", lo, hi), build)


def _span_items(segment: PackedSegment, lo: int, hi: int) -> dict:
    """The exclude-loop items of a span: SNOOPs and ALLOCs, in order.

    ``code`` classifies each item: 0 = P0 snoop, 1 = P1 snoop (the
    safety-reference case), 2 = alloc.  EVICTs are never items — no
    exclude-style filter has an eviction hook.
    """

    def build() -> dict:
        s = _span_stats(segment, lo, hi)
        e = segment.array()[lo:hi]
        pos = _np.flatnonzero(s["snoop_m"] | s["alloc_m"])
        code = (((e & 3) << 1) | ((e >> 3) & 1))[pos]
        return {"pos": pos, "b": s["blocks"][pos], "code": code}

    return segment.shared(("items", lo, hi), build)


def _span_pairs(
    segment: PackedSegment, lo: int, hi: int, pre_shift: int, set_mask: int
):
    """Adjacent same-set item pairs that are P0 snoops of one block.

    Returns ``(prev_items, cur_items)`` — parallel arrays of item
    indexes where ``cur`` directly follows ``prev`` in its set's item
    sequence, both are P0 snoops, and both name the same block.  For a
    plain EJ every such ``cur`` is a pure repeat-hit; composed kernels
    add their own conditions on ``prev``.

    Grouping a span by set is one stable ``uint16`` argsort: items of a
    set then sit consecutively in original order, so same-set adjacency
    is adjacency in the sorted permutation.
    """

    def build():
        items = _span_items(segment, lo, hi)
        b, code = items["b"], items["code"]
        idx = ((b >> pre_shift) & set_mask).astype(_np.uint16)
        order = _np.argsort(idx, kind="stable")
        idx_s = idx[order]
        b_s = b[order]
        code_s = code[order]
        pair = (
            (idx_s[1:] == idx_s[:-1])
            & (b_s[1:] == b_s[:-1])
            & (code_s[1:] == 0)
            & (code_s[:-1] == 0)
        )
        return order[:-1][pair], order[1:][pair]

    return segment.shared(("pairs", lo, hi, pre_shift, set_mask), build)


def _lane_profile(
    segment: PackedSegment, lo: int, hi: int, shift: int, entry_bits: int
):
    """State-independent running-sum profile of one IJ lane over a span.

    Returns ``(idx, order, idx_s, rel_s)`` where ``idx`` is each event's
    counter index, ``order``/``idx_s`` the stable sort by index, and
    ``rel_s[i]`` the net +1/-1 delta of *earlier same-index events in
    this span* — so a lane's counter value before sorted event ``i`` is
    ``counters[idx_s[i]] + rel_s[i]`` whatever the carried-in counters
    are.  Keyed only on geometry, the profile is shared between an IJ
    bank and any HJ bank wrapping the same IJ configuration.
    """

    def build():
        s = _span_stats(segment, lo, hi)
        m = (1 << entry_bits) - 1
        idx = ((s["blocks"] >> shift) & m).astype(_np.uint16)
        order = _np.argsort(idx, kind="stable")
        idx_s = idx[order]
        d_s = s["delta"][order]
        cs = _np.cumsum(d_s)
        excl = cs - d_s  # prefix sum excluding the event itself
        n = idx_s.size
        first = _np.empty(n, dtype=bool)
        first[0] = True
        _np.not_equal(idx_s[1:], idx_s[:-1], out=first[1:])
        fpos = _np.flatnonzero(first)
        reps = _np.diff(_np.append(fpos, n))
        rel_s = excl - _np.repeat(excl[fpos], reps)
        return idx, order, idx_s, rel_s

    return segment.shared(("lane", lo, hi, shift, entry_bits), build)


def _warm_stacks(exclude: ExcludeJetty) -> list[list[int]]:
    """Per-set MRU-first stacks importing an EJ's current contents.

    A freshly built filter has no valid entries, so the cold path gets
    the empty stacks it always had; a restored (fast-forwarded) filter
    contributes its valid entries in recency order — way placement and
    invalid ways are unobservable to replay, exactly the abstraction
    the stack model is built on.
    """
    return [
        [tags[way] for way in lru.order() if tags[way] is not None]
        for tags, lru in zip(exclude._tags, exclude._lru)
    ]


def _warm_vectors(exclude: VectorExcludeJetty) -> list[dict[int, int]]:
    """Per-set insertion-ordered chunk->vector dicts importing a VEJ.

    The replayer's eviction takes the dict's *first* key, so entries
    insert in LRU-to-MRU order (``lru.order()`` is MRU-first, hence
    reversed), skipping invalid ways.
    """
    vectors: list[dict[int, int]] = []
    for chunks, vecs, lru in zip(
        exclude._chunks, exclude._vectors, exclude._lru
    ):
        entries: dict[int, int] = {}
        for way in reversed(lru.order()):
            chunk = chunks[way]
            if chunk is not None:
                entries[chunk] = vecs[way]
        vectors.append(entries)
    return vectors


class _IncludeLanes:
    """The vectorised counter machinery of one :class:`IncludeJetty`.

    Owns the persistent per-lane counter arrays (the only IJ state) and
    evaluates whole spans: per-event pre-values, the ANDed presence
    verdict at snoops, pbit-transition counts, underflow detection, and
    the end-of-span counter commit.

    The whole span evaluation is memoised on the segment under a key
    that names the lane geometry *and* the event history folded into
    the counters so far — two banks whose IJs share a configuration
    (an ``IJ-AxBxC`` bank and an ``HJ(IJ-AxBxC, ...)`` bank replaying
    the same trace) necessarily carry identical counter state at every
    span boundary, so the second bank reuses the first's evaluation
    wholesale instead of re-sorting every lane.
    """

    __slots__ = (
        "include", "_counters", "_events", "_allocs", "_evicts", "_seed"
    )

    def __init__(self, include: IncludeJetty) -> None:
        self.include = include
        # Import the wrapped filter's current counters: zeros for a
        # freshly built IJ, the warmed lanes for a fast-forwarded one.
        self._counters = [
            _np.asarray(counters, dtype=_np.int32)
            for counters in include._counters
        ]
        # Committed-history fingerprint, part of the sharing key: equal
        # geometry + equal *initial state* + equal history => equal
        # counter state.  The seed digest distinguishes warm starts —
        # all cold lanes of one geometry share one digest, so the
        # IJ-and-HJ sharing of cold replays is untouched.
        self._seed = hashlib.sha256(
            b"".join(counters.tobytes() for counters in self._counters)
        ).hexdigest()[:16]
        self._events = 0
        self._allocs = 0
        self._evicts = 0

    def span(self, segment: PackedSegment, lo: int, hi: int) -> dict:
        """Evaluate one span; returns the shared evaluation record.

        ``all_pass[i]`` — every lane counter nonzero before event ``i``
        (meaningful at snoop positions); ``under_k`` — span position of
        the first underflowing EVICT, or -1; ``pbw`` — presence-bit
        transitions over the whole span; ``deltas`` — per-lane counter
        deltas for :meth:`commit`.  ``all_pass`` values after an
        underflow position are garbage; callers never read past it.
        """
        include = self.include
        key = (
            "ijspan", lo, hi,
            include.entry_bits, include.n_arrays, include.skip,
            self._seed, self._events, self._allocs, self._evicts,
        )

        def build() -> dict:
            s = _span_stats(segment, lo, hi)
            alloc_m, evict_m = s["alloc_m"], s["evict_m"]
            size = self._counters[0].size
            all_pass = None
            pres = []
            idxs = []
            for counters, shift in zip(self._counters, include._shifts):
                idx, order, idx_s, rel_s = _lane_profile(
                    segment, lo, hi, shift, include.entry_bits
                )
                pre_s = counters[idx_s] + rel_s
                pre = _np.empty_like(pre_s)
                pre[order] = pre_s
                ok = pre > 0
                all_pass = ok if all_pass is None else all_pass & ok
                pres.append(pre)
                idxs.append(idx)
            under_k = -1
            if s["n_evicts"]:
                under = None
                for pre in pres:
                    zero = evict_m & (pre == 0)
                    under = zero if under is None else under | zero
                where = _np.flatnonzero(under)
                if where.size:
                    under_k = int(where[0])
            pbw = 0
            for pre in pres:
                pbw += int((alloc_m & (pre == 0)).sum())
                pbw += int((evict_m & (pre == 1)).sum())
            deltas = [
                (
                    _np.bincount(idx[alloc_m], minlength=size)
                    - _np.bincount(idx[evict_m], minlength=size)
                ).astype(_np.int32)
                for idx in idxs
            ]
            return {
                "all_pass": all_pass,
                "under_k": under_k,
                "pbw": pbw,
                "deltas": deltas,
            }

        return segment.shared(key, build)

    def underflow_error(self, block: int) -> CoherenceError:
        return CoherenceError(
            f"IJ counter underflow for block {block:#x} in "
            f"{self.include.name}: eviction without a matching allocation"
        )

    def commit(self, s: dict, span: dict) -> None:
        """Fold the span's allocate/evict deltas into the lane counters."""
        for counters, delta in zip(self._counters, span["deltas"]):
            counters += delta
        self._events += (
            s["n_snoops"] + s["n_allocs"] + s["n_evicts"]
        )
        self._allocs += s["n_allocs"]
        self._evicts += s["n_evicts"]


# ----------------------------------------------------------------------
# Replayers
# ----------------------------------------------------------------------


class VectorReplayer:
    """Base vector replayer: marker splitting, flushing, error parity.

    Mirrors the :class:`~repro.core.stats.EventReplayer` surface
    (``feed`` / ``feed_segment`` / ``finish``) so
    :class:`~repro.core.stats.StreamingFilterBank` can hold either
    interchangeably.  The wrapped filter object is *never driven* — the
    replayer keeps private state and synthesises the
    :class:`FilterEventCounts` itself, so the filter's own ``counts``
    stay zero.  Checkpointing is unsupported (checkpointed paths use the
    Python kernel), and :meth:`snapshot`/:meth:`restore` say so loudly.
    """

    def __init__(
        self, snoop_filter: SnoopFilter, node_id: int, phase_names=()
    ) -> None:
        self.snoop_filter = snoop_filter
        self.node_id = node_id
        self.stats = CoverageStats()
        self.allocs = 0
        self.evicts = 0
        self.counts = FilterEventCounts()
        self.phase_names = tuple(phase_names)
        #: ``(phase_index, cumulative totals)`` at each PHASE marker —
        #: the same snapshot shape the oracle keeps, so both kernels
        #: derive their per-phase splits through one builder.
        self._phase_marks: list = []

    def feed(self, events) -> None:
        """Consume one batch of packed events (any iterable shape)."""
        if type(events) is not PackedSegment:
            events = PackedSegment(events)
        self.feed_segment(events)

    def feed_segment(self, segment: PackedSegment) -> None:
        """Consume a shared decoded segment, splitting at MARKERs.

        Between markers a span is a pure SNOOP/ALLOC/EVICT run — the
        shape the span kernels assume.  A bare MARKER resets statistics
        and synthesised counts exactly as the oracle's warm-up reset
        does; a PHASE marker (non-zero flag) only snapshots the running
        totals, closing the phase's slice.  Filter state carries across
        both.
        """
        arr = segment.array()
        n = arr.size
        if n == 0:
            return
        markers = segment.shared(
            "markers", lambda: _np.flatnonzero((arr & 3) == MARKER)
        )
        lo = 0
        for marker in markers.tolist():
            if marker > lo:
                self._span(segment, lo, marker)
            event = int(arr[marker])
            if event & 0b1100:  # PHASE: close the running slice.
                stats = self.stats
                self._phase_marks.append((
                    event >> 4,
                    (stats.snoops, stats.snoop_would_hit,
                     stats.snoop_would_miss, stats.filtered,
                     self.allocs, self.evicts),
                ))
            else:  # warm-up MARKER: statistics restart, state persists.
                self.stats = CoverageStats()
                self.allocs = self.evicts = 0
                self.counts = FilterEventCounts()
                self._phase_marks.clear()
            lo = marker + 1
        if n > lo:
            self._span(segment, lo, n)

    def finish(self) -> FilterEvaluation:
        """Package the accumulated statistics of everything fed so far."""
        stats = self.stats
        return FilterEvaluation(
            filter_name=self.snoop_filter.name,
            coverage=stats,
            events=self.counts,
            storage_bits=self.snoop_filter.storage_bits(),
            allocs=self.allocs,
            evicts=self.evicts,
            phases=phases_from_marks(
                self._phase_marks,
                (stats.snoops, stats.snoop_would_hit,
                 stats.snoop_would_miss, stats.filtered,
                 self.allocs, self.evicts),
                self.phase_names,
            ),
        )

    def snapshot(self) -> dict:
        raise ConfigurationError(
            "the numpy replay kernel does not support checkpointing; "
            "use the python kernel"
        )

    def restore(self, state) -> None:
        raise ConfigurationError(
            "the numpy replay kernel does not support checkpointing; "
            "use the python kernel"
        )

    # -- shared accounting helpers -------------------------------------

    def _flush_span(self, s: dict, filtered: int) -> None:
        stats = self.stats
        stats.snoops += s["n_snoops"]
        stats.snoop_would_hit += s["n_would_hit"]
        stats.snoop_would_miss += s["n_snoops"] - s["n_would_hit"]
        stats.filtered += filtered
        self.allocs += s["n_allocs"]
        self.evicts += s["n_evicts"]

    def _flush_prefix(self, s: dict, k: int, filtered: int) -> None:
        """Flush coverage for span events ``[0, k]`` before raising.

        Matches the oracle's ``finally`` flush: the erroring event's own
        kind tally (the snoop of a safety violation, the evict of an
        underflow) is already counted when the raise happens, while
        ``filtered`` covers only snoops strictly before it.
        """
        stats = self.stats
        snoops = int(s["snoop_m"][: k + 1].sum())
        would_hit = int(s["wh_m"][: k + 1].sum())
        stats.snoops += snoops
        stats.snoop_would_hit += would_hit
        stats.snoop_would_miss += snoops - would_hit
        stats.filtered += filtered
        self.allocs += int(s["alloc_m"][: k + 1].sum())
        self.evicts += int(s["evict_m"][: k + 1].sum())

    def _safety_error(self, block: int) -> FilterSafetyError:
        return FilterSafetyError(
            f"{self.snoop_filter.name} filtered a snoop for block "
            f"{block:#x} on node {self.node_id}, but the block "
            "is cached — JETTY safety guarantee violated"
        )

    def _span(self, segment: PackedSegment, lo: int, hi: int) -> None:
        raise NotImplementedError


class _IncludeReplayer(VectorReplayer):
    """Fully vectorised IJ replay — no per-event Python loop at all."""

    def __init__(
        self, snoop_filter: IncludeJetty, node_id: int, phase_names=()
    ) -> None:
        super().__init__(snoop_filter, node_id, phase_names)
        self._lanes = _IncludeLanes(snoop_filter)

    def _span(self, segment: PackedSegment, lo: int, hi: int) -> None:
        s = _span_stats(segment, lo, hi)
        lanes = self._lanes
        sp = lanes.span(segment, lo, hi)
        filtered_m = s["snoop_m"] & ~sp["all_pass"]
        viol_k = -1
        viol = _np.flatnonzero(filtered_m & s["pbit"])
        if viol.size:
            viol_k = int(viol[0])
        under_k = sp["under_k"]
        # First error wins; pre-values (and thus both detections) are
        # exact up to the earlier of the two positions.
        if viol_k >= 0 and (under_k < 0 or viol_k < under_k):
            self._flush_prefix(s, viol_k, int(filtered_m[:viol_k].sum()))
            raise self._safety_error(int(s["blocks"][viol_k]))
        if under_k >= 0:
            self._flush_prefix(s, under_k, int(filtered_m[:under_k].sum()))
            raise lanes.underflow_error(int(s["blocks"][under_k]))
        filtered = int(filtered_m.sum())
        self._flush_span(s, filtered)
        counts = self.counts
        counts.probes += s["n_snoops"]
        counts.filtered += filtered
        counts.cnt_updates += self.snoop_filter.n_arrays * (
            s["n_allocs"] + s["n_evicts"]
        )
        counts.pbit_writes += sp["pbw"]
        lanes.commit(s, sp)


class _ExcludeLoopReplayer(VectorReplayer):
    """Shared scaffolding for the kernels built around an exclude loop.

    Subclasses provide ``_dedup_pre_shift``/``_dedup_mask`` (the set
    grouping of the repeat-hit dedup) and ``_run_loop`` (the family
    loop), and get item extraction, dedup bookkeeping, violation
    position recovery, and prefix flushing here.

    The loop reports a safety violation by returning the violating
    block (or ``None``): violations happen only in the rare P1 branch,
    so the loop counts P1 items as it goes instead of tracking every
    item's index, and the violating item's span position is recovered
    afterwards from the precomputed P1 position list.
    """

    _dedup_pre_shift = 0
    _dedup_mask = 0

    def _dedup_items(self, segment, lo, hi, ij_ok_items=None):
        """Items with pure repeat-hits removed, plus dup positions.

        ``ij_ok_items`` (HJ only) further requires the *previous*
        same-set item to have passed the IJ — the condition under which
        the previous snoop is guaranteed to leave the block's entry at
        MRU whatever the exclude state was.
        """
        items = _span_items(segment, lo, hi)
        prev_it, cur_it = _span_pairs(
            segment, lo, hi, self._dedup_pre_shift, self._dedup_mask
        )
        if ij_ok_items is not None and prev_it.size:
            cur_it = cur_it[ij_ok_items[prev_it]]
        if cur_it.size:
            keep = _np.ones(items["b"].size, dtype=bool)
            keep[cur_it] = False
            b = items["b"][keep]
            code = items["code"][keep]
            pos = items["pos"][keep]
            dup_pos = items["pos"][cur_it]
            dup_pos.sort()
        else:
            b, code, pos = items["b"], items["code"], items["pos"]
            dup_pos = None
        return b, code, pos, dup_pos

    def _violation_pos(self, code, pos, p1_seen: int) -> int:
        """Span position of the ``p1_seen``-th P1 item (1-based)."""
        return int(pos[code == 1][p1_seen - 1])

    def _dups_before(self, dup_pos, k: int) -> int:
        if dup_pos is None:
            return 0
        return int(_np.searchsorted(dup_pos, k))

    def _set_groups(
        self, segment, lo, hi, b_arr, code, ok=None, memo: bool = True
    ) -> dict:
        """Group a span's residual items by set with one stable argsort.

        Returns ``gids`` (the set index of each group), ``bounds`` (group
        slice boundaries), and the item arrays permuted set-major —
        within a group, items keep their original relative order, which
        is all the per-set state machines can observe.  Memoised on the
        segment for the plain EJ/VEJ kernels (their dedup, and therefore
        their grouping, depends only on the set geometry); the hybrid
        kernel's dedup depends on IJ state, so it passes ``memo=False``.
        """

        def build() -> dict:
            idx = (
                (b_arr >> self._dedup_pre_shift) & self._dedup_mask
            ).astype(_np.uint16)
            order = _np.argsort(idx, kind="stable")
            idx_s = idx[order]
            n = idx_s.size
            if n == 0:
                record = {"gids": [], "bounds": [0], "b": [], "code": []}
                if ok is not None:
                    record["ok"] = []
                return record
            first = _np.empty(n, dtype=bool)
            first[0] = True
            _np.not_equal(idx_s[1:], idx_s[:-1], out=first[1:])
            fpos = _np.flatnonzero(first)
            bounds = fpos.tolist()
            bounds.append(n)
            # Plain Python lists: the group loops slice them directly
            # (C-level list slicing), and memoisation shares the one
            # conversion between every bank replaying the segment.
            record = {
                "gids": idx_s[fpos].tolist(),
                "bounds": bounds,
                "b": b_arr[order].tolist(),
                "code": code[order].tolist(),
            }
            if ok is not None:
                record["ok"] = ok[order].tolist()
            return record

        if memo:
            return segment.shared(
                ("exgroup", lo, hi, self._dedup_pre_shift, self._dedup_mask),
                build,
            )
        return build()


class _ExcludeReplayer(_ExcludeLoopReplayer):
    """EJ replay: per-set bounded MRU stacks over pre-extracted items.

    A stack holds the set's valid blocks in recency order; that is the
    whole observable state — way placement only matters to snapshots,
    which replay never takes.  Insertion on a full set pops the list
    tail (the LRU entry), allocation removes the block wherever it sits
    (the concrete array keeps the way's recency slot, but a slot only
    becomes observable once re-filled, at MRU).
    """

    def __init__(
        self, snoop_filter: ExcludeJetty, node_id: int, phase_names=()
    ) -> None:
        super().__init__(snoop_filter, node_id, phase_names)
        self._dedup_mask = snoop_filter._index_mask
        self._stacks = _warm_stacks(snoop_filter)

    @staticmethod
    def _group_ej(stack: list, blist, clist, ways: int):
        """Run one set's items through its stack; ``None`` on violation."""
        entry_writes = filtered = 0
        for b, c in zip(blist, clist):
            if c == 0:  # P0 snoop
                if b in stack:
                    if stack[0] != b:
                        stack.remove(b)
                        stack.insert(0, b)
                    filtered += 1
                else:
                    if len(stack) == ways:
                        stack.pop()
                    stack.insert(0, b)
                    entry_writes += 1
            elif c == 2:  # alloc: invalidate any entry claiming absence
                if b in stack:
                    stack.remove(b)
                    entry_writes += 1
            else:  # P1 snoop: a hit would filter a cached block
                if b in stack:
                    return None
        return entry_writes, filtered

    def _sequential(self, blist, clist):
        """Original-order fallback for the violation post-mortem."""
        stacks = self._stacks
        smask = self._dedup_mask
        ways = self.snoop_filter.ways
        entry_writes = filtered = p1_seen = 0
        viol_b = None
        for b, c in zip(blist, clist):
            if c == 0:
                stack = stacks[b & smask]
                if b in stack:
                    if stack[0] != b:
                        stack.remove(b)
                        stack.insert(0, b)
                    filtered += 1
                else:
                    if len(stack) == ways:
                        stack.pop()
                    stack.insert(0, b)
                    entry_writes += 1
            elif c == 2:
                stack = stacks[b & smask]
                if b in stack:
                    stack.remove(b)
                    entry_writes += 1
            else:
                p1_seen += 1
                if b in stacks[b & smask]:
                    viol_b = b
                    break
        return viol_b, entry_writes, filtered, p1_seen

    def _span(self, segment: PackedSegment, lo: int, hi: int) -> None:
        s = _span_stats(segment, lo, hi)
        b_arr, code, pos, dup_pos = self._dedup_items(segment, lo, hi)
        groups = self._set_groups(segment, lo, hi, b_arr, code)
        stacks = self._stacks
        ways = self.snoop_filter.ways
        bounds = groups["bounds"]
        b_s, code_s = groups["b"], groups["code"]
        entry_writes = filtered = 0
        touched = []
        violated = False
        for gi, g in enumerate(groups["gids"]):
            stack = stacks[g]
            touched.append((g, stack.copy()))
            res = self._group_ej(
                stack,
                b_s[bounds[gi]:bounds[gi + 1]],
                code_s[bounds[gi]:bounds[gi + 1]],
                ways,
            )
            if res is None:
                violated = True
                break
            entry_writes += res[0]
            filtered += res[1]
        if violated:
            # Sets are independent, so a violation found group-wise is a
            # violation in original order too; restore the touched sets
            # and re-run sequentially for exact oracle error accounting.
            for g, saved in touched:
                stacks[g] = saved
            viol_b, entry_writes, filtered, p1_seen = self._sequential(
                b_arr.tolist(), code.tolist()
            )
            k = self._violation_pos(code, pos, p1_seen)
            self._flush_prefix(s, k, filtered + self._dups_before(dup_pos, k))
            raise self._safety_error(viol_b)
        if dup_pos is not None:
            filtered += dup_pos.size
        self._flush_span(s, filtered)
        counts = self.counts
        counts.probes += s["n_snoops"]
        counts.filtered += filtered
        counts.entry_writes += entry_writes


class _VectorExcludeReplayer(_ExcludeLoopReplayer):
    """VEJ replay: one insertion-ordered dict per set, MRU last.

    Same abstract-stack argument as the EJ, at chunk granularity — but a
    Python dict preserves insertion order, so one ``chunk -> vector``
    dict per set encodes recency *and* the presence vectors: the LRU
    chunk is the first key, a touch is pop-and-reinsert, and a value
    update in place (the alloc path) keeps the entry's recency slot just
    like the concrete array keeps an invalidated way's LRU slot.
    """

    def __init__(
        self, snoop_filter: VectorExcludeJetty, node_id: int, phase_names=()
    ) -> None:
        super().__init__(snoop_filter, node_id, phase_names)
        self._dedup_pre_shift = snoop_filter._vec_shift
        self._dedup_mask = snoop_filter._index_mask
        self._vectors = _warm_vectors(snoop_filter)

    @staticmethod
    def _group_vej(vecs: dict, blist, clist, vshift, vmask, ways):
        """Run one set's items through its dict; ``None`` on violation."""
        entry_writes = filtered = 0
        for b, c in zip(blist, clist):
            chunk = b >> vshift
            if c == 0:  # P0 snoop
                vector = vecs.pop(chunk, None)
                if vector is None:  # chunk miss: allocate a fresh entry
                    if len(vecs) == ways:
                        del vecs[next(iter(vecs))]
                    vecs[chunk] = 1 << (b & vmask)
                    entry_writes += 1
                else:  # chunk hit: the probe touches LRU either way
                    bit = 1 << (b & vmask)
                    if vector & bit:
                        vecs[chunk] = vector
                        filtered += 1
                    else:
                        vecs[chunk] = vector | bit
                        entry_writes += 1
            elif c == 2:  # alloc: clear the PV bit (safety-critical)
                vector = vecs.get(chunk)
                if vector is not None:
                    vector &= ~(1 << (b & vmask))
                    if vector == 0:
                        del vecs[chunk]
                    else:
                        vecs[chunk] = vector
                    entry_writes += 1
            else:  # P1 snoop
                vector = vecs.pop(chunk, None)
                if vector is not None:
                    vecs[chunk] = vector
                    if vector & (1 << (b & vmask)):
                        return None
        return entry_writes, filtered

    def _sequential(self, blist, clist):
        """Original-order fallback for the violation post-mortem."""
        snoop_filter = self.snoop_filter
        vectors = self._vectors
        vshift = snoop_filter._vec_shift
        vmask = snoop_filter._vec_mask
        smask = self._dedup_mask
        ways = snoop_filter.ways
        entry_writes = filtered = p1_seen = 0
        viol_b = None
        for b, c in zip(blist, clist):
            chunk = b >> vshift
            vecs = vectors[chunk & smask]
            if c == 0:
                vector = vecs.pop(chunk, None)
                if vector is None:
                    if len(vecs) == ways:
                        del vecs[next(iter(vecs))]
                    vecs[chunk] = 1 << (b & vmask)
                    entry_writes += 1
                else:
                    bit = 1 << (b & vmask)
                    if vector & bit:
                        vecs[chunk] = vector
                        filtered += 1
                    else:
                        vecs[chunk] = vector | bit
                        entry_writes += 1
            elif c == 2:
                vector = vecs.get(chunk)
                if vector is not None:
                    vector &= ~(1 << (b & vmask))
                    if vector == 0:
                        del vecs[chunk]
                    else:
                        vecs[chunk] = vector
                    entry_writes += 1
            else:
                p1_seen += 1
                vector = vecs.pop(chunk, None)
                if vector is not None:
                    vecs[chunk] = vector
                    if vector & (1 << (b & vmask)):
                        viol_b = b
                        break
        return viol_b, entry_writes, filtered, p1_seen

    def _span(self, segment: PackedSegment, lo: int, hi: int) -> None:
        s = _span_stats(segment, lo, hi)
        b_arr, code, pos, dup_pos = self._dedup_items(segment, lo, hi)
        snoop_filter = self.snoop_filter
        groups = self._set_groups(segment, lo, hi, b_arr, code)
        vectors = self._vectors
        vshift = snoop_filter._vec_shift
        vmask = snoop_filter._vec_mask
        ways = snoop_filter.ways
        bounds = groups["bounds"]
        b_s, code_s = groups["b"], groups["code"]
        entry_writes = filtered = 0
        touched = []
        violated = False
        for gi, g in enumerate(groups["gids"]):
            vecs = vectors[g]
            touched.append((g, dict(vecs)))
            res = self._group_vej(
                vecs,
                b_s[bounds[gi]:bounds[gi + 1]],
                code_s[bounds[gi]:bounds[gi + 1]],
                vshift, vmask, ways,
            )
            if res is None:
                violated = True
                break
            entry_writes += res[0]
            filtered += res[1]
        if violated:
            for g, saved in touched:
                vectors[g] = saved
            viol_b, entry_writes, filtered, p1_seen = self._sequential(
                b_arr.tolist(), code.tolist()
            )
            k = self._violation_pos(code, pos, p1_seen)
            self._flush_prefix(s, k, filtered + self._dups_before(dup_pos, k))
            raise self._safety_error(viol_b)
        if dup_pos is not None:
            filtered += dup_pos.size
        self._flush_span(s, filtered)
        counts = self.counts
        counts.probes += s["n_snoops"]
        counts.filtered += filtered
        counts.entry_writes += entry_writes


class _HybridReplayer(_ExcludeLoopReplayer):
    """HJ replay: vectorised IJ lanes feeding the exclude loop.

    The IJ verdict for every snoop comes out of the lane machinery as a
    boolean array; the exclude loop then owns all order-dependent state
    *and* the hybrid's filtered accounting (a snoop is filtered unless
    both components pass).  ``filtered``/``probes`` count the hybrid,
    ``entry_writes`` the exclude component, ``cnt_updates``/
    ``pbit_writes`` the include component — exactly the composition of
    :meth:`repro.core.hybrid.HybridJetty.energy_counts`.

    An IJ underflow truncates the loop at the underflow position so the
    oracle's first-error-wins ordering holds: a safety violation earlier
    in the span raises first, one later never gets the chance.
    """

    def __init__(
        self, snoop_filter: HybridJetty, node_id: int, phase_names=()
    ) -> None:
        super().__init__(snoop_filter, node_id, phase_names)
        exclude = snoop_filter.exclude
        self._lanes = _IncludeLanes(snoop_filter.include)
        self._vej = type(exclude) is VectorExcludeJetty
        if self._vej:
            self._dedup_pre_shift = exclude._vec_shift
            self._vectors = _warm_vectors(exclude)
        else:
            self._stacks = _warm_stacks(exclude)
        self._dedup_mask = exclude._index_mask

    def _span(self, segment: PackedSegment, lo: int, hi: int) -> None:
        s = _span_stats(segment, lo, hi)
        lanes = self._lanes
        sp = lanes.span(segment, lo, hi)
        all_pass = sp["all_pass"]
        under_k = sp["under_k"]
        items = _span_items(segment, lo, hi)
        ij_ok_items = all_pass[items["pos"]]
        b_arr, code, pos, dup_pos = self._dedup_items(
            segment, lo, hi, ij_ok_items=ij_ok_items
        )
        ij_ok = all_pass[pos]
        if under_k >= 0:
            # Only items before the underflow run through the loop.
            stop = int(_np.searchsorted(pos, under_k))
        else:
            stop = b_arr.size
        # The dedup (and so the residual item set) depends on IJ state,
        # which differs between spans — the grouping cannot be memoised.
        groups = self._set_groups(
            segment, lo, hi,
            b_arr[:stop], code[:stop], ok=ij_ok[:stop], memo=False,
        )
        bounds = groups["bounds"]
        b_s, code_s, ok_s = groups["b"], groups["code"], groups["ok"]
        exclude = self.snoop_filter.exclude
        state = self._vectors if self._vej else self._stacks
        entry_writes = filtered = 0
        touched = []
        violated = False
        for gi, g in enumerate(groups["gids"]):
            blist = b_s[bounds[gi]:bounds[gi + 1]]
            clist = code_s[bounds[gi]:bounds[gi + 1]]
            oklist = ok_s[bounds[gi]:bounds[gi + 1]]
            if self._vej:
                vecs = state[g]
                touched.append((g, dict(vecs)))
                res = self._group_hvej(
                    vecs, blist, clist, oklist,
                    exclude._vec_shift, exclude._vec_mask, exclude.ways,
                )
            else:
                stack = state[g]
                touched.append((g, stack.copy()))
                res = self._group_hej(stack, blist, clist, oklist,
                                      exclude.ways)
            if res is None:
                violated = True
                break
            entry_writes += res[0]
            filtered += res[1]
        if violated:
            for g, saved in touched:
                state[g] = saved
            loop = self._loop_vej if self._vej else self._loop_ej
            viol_b, entry_writes, filtered, p1_seen = loop(
                b_arr[:stop].tolist(),
                code[:stop].tolist(),
                ij_ok[:stop].tolist(),
            )
            k = self._violation_pos(code, pos, p1_seen)
            self._flush_prefix(s, k, filtered + self._dups_before(dup_pos, k))
            raise self._safety_error(viol_b)
        if under_k >= 0:
            filtered += self._dups_before(dup_pos, under_k)
            self._flush_prefix(s, under_k, filtered)
            raise lanes.underflow_error(int(s["blocks"][under_k]))
        if dup_pos is not None:
            filtered += dup_pos.size
        self._flush_span(s, filtered)
        counts = self.counts
        counts.probes += s["n_snoops"]
        counts.filtered += filtered
        counts.entry_writes += entry_writes
        counts.cnt_updates += lanes.include.n_arrays * (
            s["n_allocs"] + s["n_evicts"]
        )
        counts.pbit_writes += sp["pbw"]
        lanes.commit(s, sp)

    @staticmethod
    def _group_hej(stack: list, blist, clist, oklist, ways: int):
        """One set's items through the HJ(EJ) machine; None = violation."""
        entry_writes = filtered = 0
        for b, c, ok in zip(blist, clist, oklist):
            if c == 0:  # P0 snoop
                if b in stack:  # EJ hit filters the hybrid, IJ moot
                    if stack[0] != b:
                        stack.remove(b)
                        stack.insert(0, b)
                    filtered += 1
                elif ok:  # both passed: the outcome allocates an entry
                    if len(stack) == ways:
                        stack.pop()
                    stack.insert(0, b)
                    entry_writes += 1
                else:  # IJ filtered; EJ learns nothing
                    filtered += 1
            elif c == 2:  # alloc
                if b in stack:
                    stack.remove(b)
                    entry_writes += 1
            else:  # P1 snoop: filtering from either side is a violation
                if b in stack or not ok:
                    return None
        return entry_writes, filtered

    @staticmethod
    def _group_hvej(vecs: dict, blist, clist, oklist, vshift, vmask, ways):
        """One set's items through the HJ(VEJ) machine; None = violation."""
        entry_writes = filtered = 0
        for b, c, ok in zip(blist, clist, oklist):
            chunk = b >> vshift
            if c == 0:  # P0 snoop
                vector = vecs.pop(chunk, None)
                if vector is not None:  # chunk hit: the probe touches
                    bit = 1 << (b & vmask)
                    if vector & bit:
                        vecs[chunk] = vector
                        filtered += 1
                    elif ok:
                        vecs[chunk] = vector | bit
                        entry_writes += 1
                    else:  # IJ filtered; the touch still happened
                        vecs[chunk] = vector
                        filtered += 1
                elif ok:
                    if len(vecs) == ways:
                        del vecs[next(iter(vecs))]
                    vecs[chunk] = 1 << (b & vmask)
                    entry_writes += 1
                else:
                    filtered += 1
            elif c == 2:  # alloc
                vector = vecs.get(chunk)
                if vector is not None:
                    vector &= ~(1 << (b & vmask))
                    if vector == 0:
                        del vecs[chunk]
                    else:
                        vecs[chunk] = vector
                    entry_writes += 1
            else:  # P1 snoop
                vector = vecs.pop(chunk, None)
                if vector is not None:
                    vecs[chunk] = vector
                    if vector & (1 << (b & vmask)):
                        return None
                if not ok:
                    return None
        return entry_writes, filtered

    def _loop_ej(self, blist, clist, oklist):
        stacks = self._stacks
        smask = self._dedup_mask
        ways = self.snoop_filter.exclude.ways
        entry_writes = filtered = p1_seen = 0
        viol_b = None
        for b, c, ok in zip(blist, clist, oklist):
            if c == 0:  # P0 snoop
                stack = stacks[b & smask]
                if b in stack:  # EJ hit filters the hybrid, IJ moot
                    if stack[0] != b:
                        stack.remove(b)
                        stack.insert(0, b)
                    filtered += 1
                elif ok:  # both passed: the outcome allocates an entry
                    if len(stack) == ways:
                        stack.pop()
                    stack.insert(0, b)
                    entry_writes += 1
                else:  # IJ filtered; EJ learns nothing
                    filtered += 1
            elif c == 2:  # alloc
                stack = stacks[b & smask]
                if b in stack:
                    stack.remove(b)
                    entry_writes += 1
            else:  # P1 snoop: filtering from either side is a violation
                p1_seen += 1
                if b in stacks[b & smask] or not ok:
                    viol_b = b
                    break
        return viol_b, entry_writes, filtered, p1_seen

    def _loop_vej(self, blist, clist, oklist):
        exclude = self.snoop_filter.exclude
        vectors = self._vectors
        vshift = exclude._vec_shift
        vmask = exclude._vec_mask
        smask = self._dedup_mask
        ways = exclude.ways
        entry_writes = filtered = p1_seen = 0
        viol_b = None
        for b, c, ok in zip(blist, clist, oklist):
            chunk = b >> vshift
            vecs = vectors[chunk & smask]
            if c == 0:  # P0 snoop
                vector = vecs.pop(chunk, None)
                if vector is not None:  # chunk hit: the probe touches
                    bit = 1 << (b & vmask)
                    if vector & bit:
                        vecs[chunk] = vector
                        filtered += 1
                    elif ok:
                        vecs[chunk] = vector | bit
                        entry_writes += 1
                    else:  # IJ filtered; the touch still happened
                        vecs[chunk] = vector
                        filtered += 1
                elif ok:
                    if len(vecs) == ways:
                        del vecs[next(iter(vecs))]
                    vecs[chunk] = 1 << (b & vmask)
                    entry_writes += 1
                else:
                    filtered += 1
            elif c == 2:  # alloc
                vector = vecs.get(chunk)
                if vector is not None:
                    vector &= ~(1 << (b & vmask))
                    if vector == 0:
                        del vecs[chunk]
                    else:
                        vecs[chunk] = vector
                    entry_writes += 1
            else:  # P1 snoop
                p1_seen += 1
                vector = vecs.pop(chunk, None)
                if vector is not None:
                    vecs[chunk] = vector
                    if vector & (1 << (b & vmask)):
                        viol_b = b
                        break
                if not ok:
                    viol_b = b
                    break
        return viol_b, entry_writes, filtered, p1_seen
