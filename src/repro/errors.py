"""Exception hierarchy for the JETTY reproduction library.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch library errors with a single
``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid structure, cache, or experiment configuration."""


class FilterNameError(ConfigurationError):
    """A JETTY configuration name could not be parsed.

    Raised by :func:`repro.core.config.parse_filter_name` for strings that
    do not match any of the paper's naming schemes (``EJ-SxA``,
    ``VEJ-SxA-V``, ``IJ-ExNxS``, ``HJ(IJ-..., EJ-...)``).
    """


class CoherenceError(ReproError):
    """The coherence substrate detected an inconsistent protocol state."""


class FilterSafetyError(ReproError):
    """A snoop filter violated the JETTY safety guarantee.

    The guarantee (paper Section 2, requirement 3): a filter must never
    report "not cached" while the block is locally cached.  The simulator
    cross-checks every filtered snoop against the true cache state and
    raises this error on a violation; it indicates a bug in a filter
    implementation, never an expected runtime condition.
    """


class TraceError(ReproError):
    """A malformed trace or access stream was supplied to the simulator."""


class WorkloadError(ReproError):
    """An unknown workload name or invalid workload specification."""


class ExecutionError(ReproError):
    """A sweep's task execution layer failed (worker, pool, or deadline).

    Base of the supervised-execution subtree.  Subclasses describe *how*
    a task attempt died; the :class:`repro.analysis.resilience.RetryPolicy`
    decides whether that failure mode is worth another attempt.
    """

    #: Whether this failure mode is transient by default — i.e. whether a
    #: fresh attempt of the same task can plausibly succeed.  RetryPolicy
    #: consults this for exception types it has no explicit opinion on.
    transient = False


class WorkerCrashError(ExecutionError):
    """A pool worker died abruptly (segfault, ``os._exit``, OOM kill).

    The task it was running never reported a result; the supervisor
    respawns the pool and requeues every in-flight task.  Transient by
    default: a crash usually indicts the worker (or the machine), not
    the task, so the task deserves another attempt.
    """

    transient = True


class TaskTimeoutError(ExecutionError):
    """A task exceeded its per-task deadline and its worker was killed.

    Transient by default — a deadline miss on a loaded machine says
    nothing definitive about the task; repeated misses exhaust the
    retry budget and quarantine it.
    """

    transient = True


class TaskQuarantinedError(ExecutionError):
    """A task failed every allowed attempt and was set aside.

    Raised only when a caller demands a quarantined task's result;
    batched sweeps never raise it — they report the quarantine in the
    :class:`~repro.analysis.runner.ExecutionReport` and degrade to
    partial results instead.
    """


class ServiceError(ReproError):
    """The sweep service rejected or could not honour a request.

    Base of the service subtree (:mod:`repro.service`): protocol
    violations, malformed submissions, and capacity refusals all derive
    from here so clients can catch service-side failures with one
    clause while transport errors (socket resets, timeouts) propagate
    as their stdlib selves.
    """


class QueueFullError(ServiceError):
    """A submission would overflow the server's bounded pending queue.

    Carries ``retry_after`` — the seconds a well-behaved client should
    wait before retrying (the HTTP layer surfaces it as a 429 response
    with a ``Retry-After`` header).  Backpressure, not failure: the
    request was valid, the server is protecting itself.
    """

    def __init__(self, message: str, *, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class LeaseError(ServiceError):
    """A worker presented an unknown, expired, or stolen lease token.

    Stale completions are *expected* under churn (the lease expired and
    the shard was reassigned while the original worker kept computing);
    the server answers them without side effects because the worker's
    store writes are content-addressed and therefore harmless.
    """


class StoreCorruptionError(ReproError):
    """A stored payload failed validation (zlib, JSON, or structure).

    Raised by the ``decode_*`` family in :mod:`repro.analysis.store`
    when a blob does not decompress, parse, or reconstruct.  Corruption
    is a *store* condition, never a programming error: consumers either
    heal (delete the row and recompute — ``fsck``, the checkpoint
    resume ladder) or surface the key loudly.
    """
