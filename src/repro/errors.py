"""Exception hierarchy for the JETTY reproduction library.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch library errors with a single
``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid structure, cache, or experiment configuration."""


class FilterNameError(ConfigurationError):
    """A JETTY configuration name could not be parsed.

    Raised by :func:`repro.core.config.parse_filter_name` for strings that
    do not match any of the paper's naming schemes (``EJ-SxA``,
    ``VEJ-SxA-V``, ``IJ-ExNxS``, ``HJ(IJ-..., EJ-...)``).
    """


class CoherenceError(ReproError):
    """The coherence substrate detected an inconsistent protocol state."""


class FilterSafetyError(ReproError):
    """A snoop filter violated the JETTY safety guarantee.

    The guarantee (paper Section 2, requirement 3): a filter must never
    report "not cached" while the block is locally cached.  The simulator
    cross-checks every filtered snoop against the true cache state and
    raises this error on a violation; it indicates a bug in a filter
    implementation, never an expected runtime condition.
    """


class TraceError(ReproError):
    """A malformed trace or access stream was supplied to the simulator."""


class WorkloadError(ReproError):
    """An unknown workload name or invalid workload specification."""
