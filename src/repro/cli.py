"""Command-line interface: regenerate any exhibit from the terminal.

Examples::

    jetty-repro workloads
    jetty-repro table 3
    jetty-repro figure 5b
    jetty-repro coverage raytrace "HJ(IJ-10x4x7, EJ-32x4)"
    jetty-repro energy lu "HJ(IJ-9x4x7, EJ-32x4)"
    jetty-repro nway 8
    jetty-repro sweep --workers 4 --workloads lu fft --filters EJ-32x4 IJ-10x4x7
    jetty-repro sweep --stream --workloads em3d --accesses 2e6 --chunk-size 65536
    jetty-repro sweep --stream --preset paper-scale --workloads lu
    jetty-repro --store traces.sqlite trace record em3d --accesses 2e6
    jetty-repro --store traces.sqlite trace replay em3d --accesses 2e6 \
        --workers 2 --backend process
    jetty-repro --store traces.sqlite sweep --replay --workloads lu radix
    jetty-repro --store results.sqlite sweep --stream --preset paper-scale \
        --workloads em3d --checkpoint-every 500000
    jetty-repro --store results.sqlite checkpoint list
    jetty-repro --store results.sqlite cache info
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import experiments, figures, report, runner, tables
from repro.coherence.config import SCALED_SYSTEM
from repro.core.stats import REPLAY_KERNELS
from repro.traces.workloads import PRESETS, WORKLOADS
from repro.utils.text import format_percent, render_table


def _count(text: str) -> int:
    """Access-count argument: plain ints or paper-scale floats like 25e6."""
    import math

    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}") from None
    if not math.isfinite(value) or value < 0 or value != int(value):
        raise argparse.ArgumentTypeError(
            f"expected a non-negative whole number, got {text!r}"
        )
    return int(value)


def _positive_count(text: str) -> int:
    """Like :func:`_count` but zero is rejected (chunk sizes)."""
    value = _count(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive whole number, got {text!r}"
        )
    return value


def _cmd_workloads(_args: argparse.Namespace) -> int:
    headers = ["name", "ab", "accesses", "repeat", "description"]
    rows = [
        [s.name, s.abbrev, f"{s.n_accesses:,}", f"{s.repeat_frac:.2f}", s.description]
        for s in WORKLOADS.values()
    ]
    print(render_table(headers, rows, title="Workloads (paper Table 2)"))
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    builders = {
        "1": tables.build_table1,
        "2": lambda: tables.build_table2(seed=args.seed),
        "3": lambda: tables.build_table3(seed=args.seed),
        "4": tables.build_table4,
    }
    builder = builders.get(args.which)
    if builder is None:
        print(f"unknown table {args.which!r}; choose 1-4", file=sys.stderr)
        return 2
    headers, rows = builder()
    print(report.render_table_rows(headers, rows, title=f"Table {args.which}"))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    which = args.which.lower()
    if which in ("2", "2a", "2b"):
        block = 64 if which == "2b" else 32
        print(report.render_figure(figures.build_figure2(block_bytes=block)))
        return 0
    builders = {
        "4a": figures.build_figure4a,
        "4b": figures.build_figure4b,
        "5a": figures.build_figure5a,
        "5b": figures.build_figure5b,
    }
    if which in builders:
        print(report.render_figure(builders[which](seed=args.seed)))
        return 0
    if which in ("6", "6a", "6b", "6c", "6d"):
        panels = figures.build_figure6(seed=args.seed)
        wanted = panels if which == "6" else {which[-1]: panels[which[-1]]}
        for panel in wanted.values():
            print(report.render_figure(panel))
            print()
        return 0
    print(f"unknown figure {args.which!r}; choose 2, 4a, 4b, 5a, 5b, 6[a-d]",
          file=sys.stderr)
    return 2


def _cmd_coverage(args: argparse.Namespace) -> int:
    value = experiments.coverage_for(args.workload, args.filter, seed=args.seed)
    print(f"{args.filter} on {args.workload}: coverage {format_percent(value)}")
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    reduction = experiments.energy_reduction_for(
        args.workload, args.filter, seed=args.seed
    )
    headers = ["metric", "reduction"]
    rows = [
        ["over snoops, serial L2", format_percent(reduction.over_snoops_serial)],
        ["over all L2, serial L2", format_percent(reduction.over_all_serial)],
        ["over snoops, parallel L2", format_percent(reduction.over_snoops_parallel)],
        ["over all L2, parallel L2", format_percent(reduction.over_all_parallel)],
    ]
    print(render_table(headers, rows, title=f"{args.filter} on {args.workload}"))
    return 0


def _cmd_nway(args: argparse.Namespace) -> int:
    summary = experiments.summarize_nway(args.cpus, seed=args.seed)
    print(
        f"{summary.n_cpus}-way SMP: snoop misses are "
        f"{format_percent(summary.snoop_miss_of_all)} of all L2 accesses; "
        f"best-HJ coverage {format_percent(summary.mean_coverage)}"
    )
    return 0


def _cmd_size(args: argparse.Namespace) -> int:
    from repro.core.sizing import smallest_covering_config

    result = smallest_covering_config(
        args.workloads, args.target, seed=args.seed
    )
    if result is None:
        print(f"no evaluated configuration reaches {args.target:.0%} "
              "coverage on all given workloads", file=sys.stderr)
        return 1
    print(f"smallest configuration covering >= {args.target:.0%}: "
          f"{result.config_name} ({result.storage_bits / 8 / 1024:.2f} KiB)")
    for workload, coverage in result.per_workload.items():
        print(f"  {workload:14s} {format_percent(coverage)}")
    return 0


def _cmd_trace_save(args: argparse.Namespace) -> int:
    from repro.traces.io import save_trace, trace_length
    from repro.traces.workloads import build_workload_stream

    stream = build_workload_stream(
        args.workload, n_accesses=args.accesses, seed=args.seed
    )
    count = save_trace(args.path, stream)
    print(f"wrote {count:,} accesses ({trace_length(args.path):,} verified) "
          f"to {args.path}")
    return 0


def _replay_spec(args: argparse.Namespace):
    """The (possibly access-count-overridden) spec a trace command targets.

    Record and replay must apply identical overrides or their store keys
    would never meet — one helper keeps them in lockstep.
    """
    from dataclasses import replace as dc_replace

    from repro.traces.workloads import get_workload

    spec = get_workload(args.workload)
    if args.accesses is not None:
        spec = dc_replace(spec, n_accesses=args.accesses)
    if args.warmup is not None:
        spec = dc_replace(spec, warmup_accesses=args.warmup)
    return spec


def _trace_system(args: argparse.Namespace):
    return SCALED_SYSTEM if args.cpus is None else SCALED_SYSTEM.with_cpus(args.cpus)


def _trace_accounting(store) -> tuple[dict[str, dict], dict[str, tuple[int, int]]]:
    """Stored-byte accounting for every trace, in one store pass.

    Returns ``(per_trace, orphans)``.  ``per_trace[manifest_key]`` holds
    ``segments`` (rows actually present), ``segment_bytes`` and
    ``manifest_bytes`` — totals that include the manifest row, matching
    what deleting the trace would free.  ``orphans`` maps manifest keys
    that have segment rows but *no manifest* (a partial record killed
    before its durability point) to ``(rows, bytes)``; the fsck ladder
    removes them, inspection must at least show them.
    """
    from repro.analysis.store import TRACE_KIND

    manifest_bytes: dict[str, int] = {}
    groups: dict[str, tuple[int, int]] = {}
    for entry in store.entries():
        if entry.kind != TRACE_KIND:
            continue
        if entry.filter_name is None:  # manifest row
            manifest_bytes[entry.key] = entry.payload_bytes
        else:  # segment row, grouped by its manifest key
            rows, total = groups.get(entry.filter_name, (0, 0))
            groups[entry.filter_name] = (rows + 1, total + entry.payload_bytes)
    per_trace = {}
    for key, mbytes in manifest_bytes.items():
        rows, sbytes = groups.pop(key, (0, 0))
        per_trace[key] = {
            "segments": rows,
            "segment_bytes": sbytes,
            "manifest_bytes": mbytes,
        }
    return per_trace, groups  # leftover groups have no manifest: orphans


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from repro.analysis import store as store_mod

    spec = _replay_spec(args)
    system = _trace_system(args)
    store = experiments.get_store()
    if args.warm_filters:
        from repro.core.config import parse_filter_name

        for filter_name in args.warm_filters:
            parse_filter_name(filter_name)
    report = runner.execute_replays(
        [runner.ReplayJob(spec.name, (), system, args.seed, args.chunk_size,
                          args.codec, args.measured_only,
                          tuple(args.warm_filters or ()))],
        experiment_store=store, specs={spec.name: spec},
    )
    tkey = store_mod.trace_key(spec, system, args.seed)
    acct, _ = _trace_accounting(store)
    info = acct.get(tkey, {"segments": 0, "segment_bytes": 0,
                           "manifest_bytes": 0})
    nbytes = info["segment_bytes"] + info["manifest_bytes"]
    verb = "recorded" if report.sims_run else "already recorded"
    mode = " (measured region only)" if args.measured_only else ""
    print(f"{verb}: {spec.name} seed {args.seed} on {system.n_cpus} CPUs — "
          f"{spec.n_accesses:,} accesses{mode}, {info['segments']} segment(s), "
          f"{nbytes / 1024:.1f} KiB stored")
    print(report.summary())
    return 0


def _cmd_trace_transcode(args: argparse.Namespace) -> int:
    from repro.analysis import store as store_mod

    spec = _replay_spec(args)
    system = _trace_system(args)
    store = experiments.get_store()
    tkey = store_mod.trace_key(spec, system, args.seed)
    before, after = runner.transcode_trace(store, tkey, args.codec)
    ratio = after / before if before else 1.0
    print(f"transcoded: {spec.name} seed {args.seed} on {system.n_cpus} CPUs "
          f"to {args.codec} — segment bytes {before:,} -> {after:,} "
          f"({ratio:.2f}x)")
    return 0


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    from repro.core.config import parse_filter_name

    spec = _replay_spec(args)
    system = _trace_system(args)
    filters = args.filters if args.filters else list(runner.DEFAULT_SWEEP_FILTERS)
    for filter_name in filters:
        parse_filter_name(filter_name)
    outcome = runner.evaluate_replay(
        spec, system, tuple(filters), args.seed,
        workers=args.workers, backend=args.backend,
        experiment_store=experiments.get_store(),
        kernel=args.kernel,
        codec=args.codec,
        measured_only=args.measured_only,
    )
    headers = ["filter", "coverage"]
    rows = [[name, format_percent(outcome.coverage(name))] for name in filters]
    print(render_table(
        headers, rows,
        title=f"replay: {spec.name} seed {args.seed} ({system.n_cpus} CPUs)",
    ))
    print(outcome.report.summary())
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    from repro.analysis import store as store_mod
    from repro.analysis.store import TRACE_KIND

    store = experiments.get_store()
    manifests = [
        entry for entry in store.entries()
        if entry.kind == TRACE_KIND and entry.filter_name is None
    ]
    if args.workload is not None:
        manifests = [m for m in manifests if m.workload == args.workload]
    acct, orphans = _trace_accounting(store)
    if not manifests and not orphans:
        print("no recorded traces"
              + (f" for workload {args.workload!r}" if args.workload else ""))
        return 0
    headers = ["workload", "cpus", "seed", "accesses", "events", "codec",
               "mode", "segments", "size"]
    rows = []
    for entry in manifests:
        manifest = store_mod.decode_trace_manifest(store.get_blob(entry.key))
        info = acct.get(entry.key, {"segments": 0, "segment_bytes": 0,
                                    "manifest_bytes": entry.payload_bytes})
        expected = sum(manifest["segments_per_node"])
        present = info["segments"]
        segments = (
            str(expected) if present == expected
            else f"{present}/{expected} (incomplete)"
        )
        nbytes = info["segment_bytes"] + info["manifest_bytes"]
        rows.append([
            entry.workload,
            str(entry.n_cpus),
            str(entry.seed),
            f"{manifest['metrics']['accesses']:,}",
            f"{sum(manifest['events_per_node']):,}",
            manifest.get("codec", store_mod.DEFAULT_SEGMENT_CODEC),
            "measured" if manifest.get("measured_only") else "full",
            segments,
            f"{nbytes / 1024:.1f} KiB",
        ])
    if rows:
        print(render_table(headers, rows, title="recorded traces (sim-events)"))
    if orphans and args.workload is None:
        print("orphaned segments (no manifest — partial record; "
              "cache fsck removes them):")
        for key in sorted(orphans):
            count, nbytes = orphans[key]
            print(f"  {key[:16]}: {count} segment(s), {nbytes / 1024:.1f} KiB")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.config import parse_filter_name
    from repro.traces.workloads import get_workload

    if args.preset == "paper-scale" and not (args.stream or args.replay):
        print(
            "error: --preset paper-scale requires --stream or --replay "
            "(buffered mode materialises the full event trace in memory "
            "at paper scale)",
            file=sys.stderr,
        )
        return 2
    if args.stream and args.replay:
        print("error: choose --stream or --replay, not both", file=sys.stderr)
        return 2
    if args.checkpoint_every is not None and not (args.stream or args.replay):
        print(
            "error: --checkpoint-every requires --stream or --replay "
            "(buffered sweeps persist whole recordings; only streamed "
            "simulations have mid-run state to checkpoint)",
            file=sys.stderr,
        )
        return 2
    if args.kernel != "auto" and not args.replay:
        print(
            "error: --kernel requires --replay (streamed and buffered "
            "sweeps drive live filters through the python path)",
            file=sys.stderr,
        )
        return 2
    workloads = args.workloads if args.workloads else list(WORKLOADS)
    filters = args.filters if args.filters else list(runner.DEFAULT_SWEEP_FILTERS)
    # Validate every name up front: a typo'd filter must not surface only
    # after minutes of simulation.
    for workload in workloads:
        get_workload(workload)
    for filter_name in filters:
        parse_filter_name(filter_name)
    system = SCALED_SYSTEM if args.cpus is None else SCALED_SYSTEM.with_cpus(args.cpus)
    seeds = tuple(args.seeds) if args.seeds else (args.seed,)
    result = runner.run_sweep(
        workloads,
        filters,
        system=system,
        seeds=seeds,
        workers=args.workers,
        experiment_store=experiments.get_store(),
        accesses=args.accesses,
        warmup=args.warmup,
        preset=args.preset,
        stream=args.stream,
        replay=args.replay,
        backend=args.backend,
        chunk_size=args.chunk_size,
        checkpoint_every=args.checkpoint_every,
        kernel=args.kernel,
        codec=args.codec,
        measured_only=args.measured_only,
        task_timeout=args.task_timeout,
    )
    headers = ["workload"] + [f"{f} (cov)" for f in filters]
    rows = []
    for workload in workloads:
        row = [workload]
        for filter_name in filters:
            cells = [
                result.evaluations.get((workload, filter_name, s))
                for s in seeds
            ]
            if any(cell is None for cell in cells):
                # Quarantined under supervision: the sweep degraded to a
                # partial result rather than aborting — say so in place.
                row.append("(failed)")
                continue
            values = [cell.coverage.coverage for cell in cells]
            row.append(format_percent(sum(values) / len(values)))
        rows.append(row)
    title = f"sweep: {len(workloads)} workloads x {len(filters)} filters"
    if args.stream:
        title += " [streamed]"
    if args.replay:
        title += " [replayed]"
    if len(seeds) > 1:
        title += f" (mean over seeds {seeds})"
    print(render_table(headers, rows, title=title))
    print(result.report.summary())
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    from repro.analysis.evaluate_matrix import evaluate_matrix
    from repro.core.config import parse_filter_name
    from repro.traces.suite import SUITES

    profiles = args.profiles if args.profiles else None
    if profiles:
        for name in profiles:
            if name not in SUITES:
                print(f"error: unknown profile suite {name!r}; choose from "
                      f"{', '.join(sorted(SUITES))}", file=sys.stderr)
                return 2
    filters = args.filters if args.filters else list(runner.DEFAULT_SWEEP_FILTERS)
    for filter_name in filters:
        parse_filter_name(filter_name)
    accesses, warmup = args.accesses, args.warmup
    if args.quick:
        # Smoke scale: every suite shrunk to the same short run (phase
        # boundaries scale proportionally), small enough for CI.
        accesses = accesses if accesses is not None else 12_000
        warmup = warmup if warmup is not None else 2_000
    outcome = evaluate_matrix(
        profiles,
        tuple(filters),
        seed=args.seed,
        accesses=accesses,
        warmup=warmup,
        workers=args.workers,
        backend=args.backend,
        chunk_size=args.chunk_size,
        experiment_store=experiments.get_store(),
    )
    print(outcome.tables())
    print(outcome.summary)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.testing.faults import run_chaos

    result = run_chaos(
        args.plan,
        workers=args.workers,
        backend=args.backend or "process",
    )
    print(result.summary())
    return 0


def _require_store_path(command: str):
    """The service commands share one SQLite file — in-memory won't do."""
    store = experiments.get_store()
    if store.path is None:
        print(
            f"error: {command} requires a persistent --store PATH "
            "(server and workers share the SQLite file as the data plane)",
            file=sys.stderr,
        )
        return None
    return store


def _cmd_serve(args: argparse.Namespace) -> int:
    from dataclasses import replace as dc_replace

    from repro.service.server import (
        SERVICE_RETRY_POLICY,
        SweepService,
        serve,
    )

    store = _require_store_path("serve")
    if store is None:
        return 2
    policy = SERVICE_RETRY_POLICY
    if args.max_attempts is not None:
        policy = dc_replace(policy, max_attempts=args.max_attempts)
    service = SweepService(
        store,
        policy=policy,
        lease_seconds=args.lease_seconds,
        max_pending=args.max_pending,
    )
    serve(
        service,
        args.host,
        args.port,
        drain_grace=args.drain_grace,
        delay_ms=args.delay_ms,
        ready_path=args.ready_file,
    )
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.service.worker import ServiceWorker

    store = _require_store_path("worker")
    if store is None:
        return 2
    worker = ServiceWorker(
        args.server,
        str(store.path),
        name=args.name,
        poll_seconds=args.poll,
        max_shards=args.max_shards,
        idle_seconds=args.idle_exit,
        drop_heartbeats=args.drop_heartbeats,
        poison=tuple(args.poison or ()),
    )
    completed = worker.run()
    print(f"worker {args.name} exiting: {completed} shard(s) completed")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(args.server, timeout=10.0)
    workloads = args.workloads if args.workloads else list(WORKLOADS)
    filters = args.filters if args.filters else list(runner.DEFAULT_SWEEP_FILTERS)
    seeds = list(args.seeds) if args.seeds else [args.seed]
    request = {
        "workloads": workloads,
        "filters": filters,
        "seeds": seeds,
        "mode": "stream" if args.stream else "replay",
    }
    for field in ("accesses", "warmup", "preset", "cpus"):
        value = getattr(args, field)
        if value is not None:
            request[field] = value
    if args.codec is not None:
        request["codec"] = args.codec
    if args.measured_only:
        request["measured_only"] = True
    status = client.submit(**request)
    print(f"job {status['job'][:12]} {status['state']}: {status['summary']}")
    if not args.wait:
        return 0
    status = client.wait(status["job"], timeout=args.timeout)
    print(f"job {status['job'][:12]} {status['state']}: {status['summary']}")
    headers = ["workload"] + [f"{f} (cov)" for f in filters]
    rows = []
    for workload in workloads:
        row = [workload]
        for filter_name in filters:
            values = []
            for seed in seeds:
                cell = client.result(
                    workload, filter_name, seed=seed,
                    mode=request["mode"],
                    accesses=request.get("accesses"),
                    warmup=request.get("warmup"),
                    preset=request.get("preset"),
                    cpus=request.get("cpus"),
                )
                if cell is not None:
                    values.append(cell["coverage"])
            if len(values) < len(seeds):
                # Quarantined on the server: the job finished degraded;
                # say so in place, like a supervised local sweep does.
                row.append("(failed)")
            else:
                row.append(format_percent(sum(values) / len(values)))
        rows.append(row)
    title = f"service sweep: {len(workloads)} workloads x {len(filters)} filters"
    if len(seeds) > 1:
        title += f" (mean over seeds {tuple(seeds)})"
    print(render_table(headers, rows, title=title))
    return 0 if status["state"] == "done" else 1


def _decoded_bytes_by_kind(store) -> dict[str, int]:
    """Decoded (in-memory) byte totals per result kind.

    Stored payloads are compressed: canonical-JSON rows zlib-deflate,
    trace segments go through the segment codec.  The decoded column is
    what replay/decode actually materialises — packed events are 8 bytes
    each regardless of codec, so this is the figure a codec shrinks the
    *stored* side of without touching.
    """
    import zlib

    from repro.analysis import store as store_mod
    from repro.analysis.store import TRACE_KIND

    decoded: dict[str, int] = {}
    for entry in store.entries():
        blob = store.get_blob(entry.key)
        if blob is None:
            continue
        if entry.kind == TRACE_KIND and entry.filter_name is not None:
            try:
                size = store_mod.decoded_segment_bytes(blob)
            except Exception:
                size = len(blob)  # corrupt segment: fsck's problem
        else:
            try:
                size = len(zlib.decompress(blob))
            except zlib.error:
                size = len(blob)
        decoded[entry.kind] = decoded.get(entry.kind, 0) + size
    return decoded


def _print_trace_economics(store) -> None:
    """Per-trace-manifest stored bytes/access lines under ``cache info``."""
    from repro.analysis import store as store_mod
    from repro.analysis.store import TRACE_KIND
    from repro.errors import StoreCorruptionError

    acct, _ = _trace_accounting(store)
    manifests = [
        entry for entry in store.entries()
        if entry.kind == TRACE_KIND and entry.filter_name is None
    ]
    for entry in manifests:
        try:
            manifest = store_mod.decode_trace_manifest(store.get_blob(entry.key))
        except StoreCorruptionError:
            continue  # fsck's problem, not inspection's
        info = acct.get(entry.key)
        if info is None:
            continue
        nbytes = info["segment_bytes"] + info["manifest_bytes"]
        accesses = manifest.get("metrics", {}).get("accesses", 0)
        if not accesses:
            continue
        codec = manifest.get("codec", store_mod.DEFAULT_SEGMENT_CODEC)
        mode = "measured" if manifest.get("measured_only") else "full"
        print(f"  trace {entry.workload} seed {entry.seed} "
              f"({entry.n_cpus}-way, {codec}, {mode}): "
              f"{nbytes / accesses:.2f} bytes/access "
              f"({nbytes / 1024:.1f} KiB / {accesses:,} accesses)")


def _cmd_cache(args: argparse.Namespace) -> int:
    store = experiments.get_store()
    if args.action == "fsck":
        fsck = store.fsck(quarantine=args.quarantine)
        print(fsck.summary())
        for key in fsck.corrupt:
            print(f"  corrupt: {key[:16]}")
        return 0 if fsck.clean else 1
    if args.action == "clear":
        removed = store.clear()
        print(f"cleared {removed} stored result(s)")
        return 0
    if args.action == "gc":
        if args.max_bytes is None:
            print("error: cache gc requires --max-bytes", file=sys.stderr)
            return 2
        removed, freed = store.gc(args.max_bytes)
        stats = store.stats()
        print(
            f"evicted {removed} least-recently-used result(s) "
            f"({freed / 1024:.1f} KiB); store now holds "
            f"{stats.payload_bytes / 1024:.1f} KiB "
            f"(budget {args.max_bytes / 1024:.1f} KiB)"
        )
        return 0
    stats = store.stats()
    location = stats.path or "in-memory (set --store or REPRO_STORE to persist)"
    print(f"store:    {location}")
    print(f"sims:     {stats.sims}")
    print(f"streamed: {stats.stream_sims}")
    print(f"traces:   {stats.traces}")
    print(f"checkpoints: {stats.checkpoints}")
    print(f"jobs:     {stats.jobs}")
    print(f"evals:    {stats.evals}")
    print(f"payload:  {stats.payload_bytes / 1024:.1f} KiB")
    decoded_by_kind = _decoded_bytes_by_kind(store)
    for kind, nbytes in stats.bytes_by_kind:
        decoded = decoded_by_kind.get(kind, nbytes)
        print(f"  {kind + ':':13s}{nbytes / 1024:.1f} KiB stored / "
              f"{decoded / 1024:.1f} KiB decoded")
    _print_trace_economics(store)
    if args.action == "list":
        from repro.analysis.store import CHECKPOINT_KIND, TRACE_KIND

        for entry in store.entries():
            if entry.kind == TRACE_KIND:
                what = (
                    "(trace manifest)" if entry.filter_name is None
                    else f"(trace segment of {entry.filter_name[:12]})"
                )
            elif entry.kind == CHECKPOINT_KIND:
                what = f"(checkpoint, chain {entry.filter_name[:12]})"
            else:
                what = entry.filter_name or "(simulation)"
            print(
                f"  {entry.kind:4s} {entry.workload:14s} {what:28s} "
                f"{entry.n_cpus}-way seed {entry.seed} "
                f"{entry.payload_bytes / 1024:.1f} KiB"
            )
    return 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    from repro.analysis import store as store_mod
    from repro.analysis.store import CHECKPOINT_KIND
    from repro.errors import StoreCorruptionError

    store = experiments.get_store()
    rows = [e for e in store.entries() if e.kind == CHECKPOINT_KIND]

    if args.action == "rm":
        if not args.all and args.workload is None:
            print("error: checkpoint rm needs a workload (or --all)",
                  file=sys.stderr)
            return 2
        chains = sorted({
            e.filter_name for e in rows
            if args.all or e.workload == args.workload
        })
        removed = sum(
            store.delete_group(CHECKPOINT_KIND, chain) for chain in chains
        )
        print(f"removed {removed} checkpoint(s) across {len(chains)} chain(s)")
        return 0

    if args.workload is not None:
        rows = [e for e in rows if e.workload == args.workload]
    if not rows:
        print("no stored checkpoints"
              + (f" for workload {args.workload!r}" if args.workload else ""))
        return 0

    chains: dict[str, list] = {}
    for entry in rows:
        chains.setdefault(entry.filter_name, []).append(entry)

    def decoded(entry):
        """The entry's snapshot dict, or None for a damaged payload.

        Corrupt checkpoint rows are the one artifact class this feature
        exists to survive — inspection must render them, never crash on
        them (the resume ladder deletes them when it next runs).
        """
        try:
            return store_mod.decode_checkpoint(store.get_blob(entry.key))
        except StoreCorruptionError:
            return None

    if args.action == "list":
        headers = ["workload", "cpus", "seed", "mode", "filters",
                   "checkpoints", "latest", "size"]
        out = []
        for chain in sorted(chains):
            entries = chains[chain]
            states = [s for s in map(decoded, entries) if s is not None]
            size = f"{sum(e.payload_bytes for e in entries) / 1024:.1f} KiB"
            if states:
                newest = max(states, key=lambda s: s.get("position", 0))
                out.append([
                    newest["workload"],
                    str(newest["n_cpus"]),
                    str(newest["seed"]),
                    "record" if newest["record"] else "stream",
                    str(len(newest["filters"])),
                    str(len(entries)),
                    f"{newest['position']:,}",
                    size,
                ])
            else:
                first = entries[0]
                out.append([
                    first.workload, str(first.n_cpus), str(first.seed),
                    "?", "?", str(len(entries)), "(undecodable)", size,
                ])
        print(render_table(headers, out,
                           title="checkpoint chains (interrupted runs)"))
        return 0

    # info: every stored watermark, newest first per chain.
    headers = ["workload", "seed", "mode", "accesses", "measured",
               "chain", "size"]
    out = []
    for chain in sorted(chains):
        pairs = [(decoded(entry), entry) for entry in chains[chain]]
        pairs.sort(
            key=lambda pair: -(pair[0] or {}).get("position", -1)
        )
        for state, entry in pairs:
            size = f"{entry.payload_bytes / 1024:.1f} KiB"
            if state is None:
                out.append([entry.workload, str(entry.seed), "?",
                            "(undecodable)", "?", chain[:12], size])
                continue
            out.append([
                state["workload"],
                str(state["seed"]),
                "record" if state["record"] else "stream",
                f"{state['position']:,}",
                "yes" if state["measured"] else "warm-up",
                chain[:12],
                size,
            ])
    print(render_table(headers, out, title="stored checkpoints"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jetty-repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--seed", type=int, default=1, help="workload seed")
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="persistent experiment store (SQLite file; default: in-memory "
        "or $REPRO_STORE)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the ten workloads").set_defaults(
        func=_cmd_workloads
    )

    p_table = sub.add_parser("table", help="regenerate a paper table")
    p_table.add_argument("which", help="table number: 1, 2, 3 or 4")
    p_table.set_defaults(func=_cmd_table)

    p_figure = sub.add_parser("figure", help="regenerate a paper figure")
    p_figure.add_argument("which", help="figure id: 2, 4a, 4b, 5a, 5b, 6[a-d]")
    p_figure.set_defaults(func=_cmd_figure)

    p_cov = sub.add_parser("coverage", help="coverage of one filter on one workload")
    p_cov.add_argument("workload")
    p_cov.add_argument("filter")
    p_cov.set_defaults(func=_cmd_coverage)

    p_energy = sub.add_parser("energy", help="energy reduction of one filter")
    p_energy.add_argument("workload")
    p_energy.add_argument("filter")
    p_energy.set_defaults(func=_cmd_energy)

    p_nway = sub.add_parser("nway", help="SMP-width scaling summary (Section 4.3.4)")
    p_nway.add_argument("cpus", type=int)
    p_nway.set_defaults(func=_cmd_nway)

    p_size = sub.add_parser(
        "size", help="smallest JETTY meeting a coverage target"
    )
    p_size.add_argument("target", type=float, help="coverage target in (0, 1]")
    p_size.add_argument("workloads", nargs="+", help="workload names")
    p_size.set_defaults(func=_cmd_size)

    p_trace = sub.add_parser(
        "trace",
        help="record, replay, inspect, or archive workload traces",
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    def _trace_overrides(p) -> None:
        p.add_argument("--accesses", type=_count, default=None,
                       help="override the workload's access count "
                       "(record and replay must agree)")
        p.add_argument("--warmup", type=_count, default=None,
                       help="override the workload's warm-up accesses")
        p.add_argument("--cpus", type=int, default=None,
                       help="SMP width (default: the scaled system's 4)")

    from repro.analysis.store import DEFAULT_SEGMENT_CODEC, SEGMENT_CODECS

    def _codec_overrides(p) -> None:
        p.add_argument("--codec", default=DEFAULT_SEGMENT_CODEC,
                       choices=sorted(SEGMENT_CODECS),
                       help="segment wire format for a *new* recording "
                       "(delta-v1 shrinks dense traces; decoded events "
                       "and replay results are byte-identical)")
        p.add_argument("--measured-only", action="store_true",
                       help="record only the measured region, persisting "
                       "a fast-forward snapshot of the warmed filter "
                       "state at the measurement boundary (requires a "
                       "warm-up; replay restores the snapshot instead "
                       "of replaying warm-up events)")

    t_record = trace_sub.add_parser(
        "record", help="simulate once, persisting the packed event shards"
    )
    t_record.add_argument("workload")
    _trace_overrides(t_record)
    _codec_overrides(t_record)
    t_record.add_argument("--chunk-size", type=_positive_count,
                          default=runner.DEFAULT_CHUNK_SIZE,
                          help="recording pass chunk size (memory knob; "
                          "never changes the stored bytes)")
    t_record.add_argument("--warm-filters", nargs="+", default=None,
                          metavar="FILTER",
                          help="measured-only: extra filter configs to "
                          "warm and snapshot besides the default sweep "
                          "set (replaying a config absent from the "
                          "snapshot requires re-recording)")
    t_record.set_defaults(func=_cmd_trace_record)

    t_transcode = trace_sub.add_parser(
        "transcode", help="rewrite a stored trace's segments under "
        "another codec, in place (keys and replays unchanged)"
    )
    t_transcode.add_argument("workload")
    _trace_overrides(t_transcode)
    t_transcode.add_argument("--codec", default=None, required=True,
                             choices=sorted(SEGMENT_CODECS),
                             help="target segment wire format")
    t_transcode.set_defaults(func=_cmd_trace_transcode)

    t_replay = trace_sub.add_parser(
        "replay", help="evaluate filters against a recorded trace "
        "(records it first if missing)"
    )
    t_replay.add_argument("workload")
    t_replay.add_argument("--filters", nargs="+", default=None,
                          help="filter configuration names "
                          "(default: best of each family)")
    _trace_overrides(t_replay)
    t_replay.add_argument("--workers", type=int, default=1,
                          help="replay workers (one filter config per task)")
    t_replay.add_argument("--backend", default=None,
                          choices=runner.EXECUTOR_BACKENDS,
                          help="executor backend for replay fan-out "
                          "(default: process)")
    t_replay.add_argument("--kernel", default="auto",
                          choices=REPLAY_KERNELS,
                          help="replay kernel: auto vectorises supported "
                          "filter families with NumPy when available; "
                          "results are byte-identical across kernels")
    _codec_overrides(t_replay)
    t_replay.set_defaults(func=_cmd_trace_replay)

    t_info = trace_sub.add_parser(
        "info", help="list recorded traces in the experiment store"
    )
    t_info.add_argument("workload", nargs="?", default=None)
    t_info.set_defaults(func=_cmd_trace_info)

    t_save = trace_sub.add_parser(
        "save", help="archive a workload trace to a .npz file"
    )
    t_save.add_argument("workload")
    t_save.add_argument("path")
    t_save.add_argument("--accesses", type=_count, default=None,
                        help="override the workload's access count")
    t_save.set_defaults(func=_cmd_trace_save)

    p_sweep = sub.add_parser(
        "sweep", help="run a workload x filter sweep on N worker processes"
    )
    p_sweep.add_argument("--workers", type=int, default=1,
                         help="worker processes (1 = in-process serial)")
    p_sweep.add_argument("--workloads", nargs="+", default=None,
                         help="workload names (default: all ten)")
    p_sweep.add_argument("--filters", nargs="+", default=None,
                         help="filter configuration names")
    p_sweep.add_argument("--seeds", type=int, nargs="+", default=None,
                         help="seeds to sweep (default: --seed)")
    p_sweep.add_argument("--cpus", type=int, default=None,
                         help="SMP width (default: the scaled system's 4)")
    p_sweep.add_argument("--accesses", type=_count, default=None,
                         help="override per-workload access count; accepts "
                         "paper-scale values like 25e6")
    p_sweep.add_argument("--warmup", type=_count, default=None,
                         help="override per-workload warm-up accesses")
    p_sweep.add_argument("--stream", action="store_true",
                         help="single-pass streaming mode: evaluate all "
                         "filters live with O(chunk) memory (required for "
                         "paper-scale access counts)")
    p_sweep.add_argument("--replay", action="store_true",
                         help="record-once / replay-many mode: persist each "
                         "(workload, seed) trace on first run, then replay "
                         "it for every filter config without re-simulating")
    p_sweep.add_argument("--backend", default=None,
                         choices=runner.EXECUTOR_BACKENDS,
                         help="executor backend for worker fan-out "
                         "(default: process)")
    p_sweep.add_argument("--chunk-size", type=_positive_count,
                         default=runner.DEFAULT_CHUNK_SIZE,
                         help="accesses per streaming chunk (memory/overhead "
                         "knob; never changes results)")
    p_sweep.add_argument("--preset", default=None,
                         choices=sorted(PRESETS),
                         help="named workload transformation, e.g. "
                         "paper-scale (Table 2 trace lengths, capped)")
    p_sweep.add_argument("--checkpoint-every", type=_positive_count,
                         default=None, metavar="N",
                         help="snapshot each streamed/recorded simulation "
                         "to the store every N accesses; a killed sweep "
                         "rerun with the same flags resumes from its "
                         "latest checkpoint (requires --stream/--replay)")
    p_sweep.add_argument("--task-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-task deadline under the process backend; "
                         "overdue workers are killed and the task retried "
                         "(default: no deadline)")
    p_sweep.add_argument("--kernel", default="auto",
                         choices=REPLAY_KERNELS,
                         help="replay kernel for --replay sweeps: auto "
                         "vectorises supported filter families with NumPy "
                         "when available; results are byte-identical "
                         "across kernels")
    _codec_overrides(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_matrix = sub.add_parser(
        "matrix",
        help="profile x filter evaluation matrix with per-phase metrics",
    )
    p_matrix.add_argument("--profiles", nargs="+", default=None,
                          help="profile suite names (default: the full "
                          "catalogue plus the flip mixes)")
    p_matrix.add_argument("--filters", nargs="+", default=None,
                          help="filter configuration names "
                          "(default: best of each family)")
    p_matrix.add_argument("--accesses", type=_count, default=None,
                          help="override each suite's access count "
                          "(phase boundaries scale proportionally)")
    p_matrix.add_argument("--warmup", type=_count, default=None,
                          help="override each suite's warm-up accesses")
    p_matrix.add_argument("--quick", action="store_true",
                          help="smoke scale: 12k accesses / 2k warm-up per "
                          "suite unless overridden")
    p_matrix.add_argument("--workers", type=int, default=1,
                          help="worker processes for the underlying sweep")
    p_matrix.add_argument("--backend", default=None,
                          choices=runner.EXECUTOR_BACKENDS,
                          help="executor backend for worker fan-out")
    p_matrix.add_argument("--chunk-size", type=_positive_count,
                          default=runner.DEFAULT_CHUNK_SIZE,
                          help="streaming chunk size (memory knob; never "
                          "changes results)")
    p_matrix.set_defaults(func=_cmd_matrix)

    p_checkpoint = sub.add_parser(
        "checkpoint",
        help="inspect or drop mid-run checkpoints of interrupted sweeps",
    )
    p_checkpoint.add_argument("action", nargs="?", default="list",
                              choices=("list", "info", "rm"))
    p_checkpoint.add_argument("workload", nargs="?", default=None,
                              help="restrict to one workload's checkpoints")
    p_checkpoint.add_argument("--all", action="store_true",
                              help="rm: drop every stored checkpoint chain")
    p_checkpoint.set_defaults(func=_cmd_checkpoint)

    p_cache = sub.add_parser(
        "cache",
        help="inspect, verify, clear, or garbage-collect the experiment store",
    )
    p_cache.add_argument("action", nargs="?", default="info",
                         choices=("info", "list", "clear", "gc", "fsck"))
    p_cache.add_argument("--max-bytes", type=_count, default=None,
                         metavar="N",
                         help="gc: evict least-recently-used results until "
                         "the compressed payload fits N bytes (accepts "
                         "forms like 5e6)")
    p_cache.add_argument("--quarantine", action="store_true",
                         help="fsck: move corrupt rows aside for post-mortem "
                         "instead of deleting them")
    p_cache.set_defaults(func=_cmd_cache)

    p_chaos = sub.add_parser(
        "chaos",
        help="run the deterministic fault-injection drill end to end",
    )
    p_chaos.add_argument("--plan", default="aggressive",
                         choices=("none", "mild", "aggressive", "service"),
                         help="named fault plan to inject (default: "
                         "aggressive); 'service' runs the subprocess "
                         "server/worker drill")
    p_chaos.add_argument("--workers", type=int, default=2,
                         help="worker processes for the drill's sweeps")
    p_chaos.add_argument("--backend", default=None,
                         choices=runner.EXECUTOR_BACKENDS,
                         help="executor backend for the drill "
                         "(default: process)")
    p_chaos.set_defaults(func=_cmd_chaos)

    p_serve = sub.add_parser(
        "serve",
        help="run the crash-safe sweep server over the shared store",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8765)
    p_serve.add_argument("--lease-seconds", type=float, default=15.0,
                         help="lease term; a worker silent this long "
                         "forfeits its shard to reassignment")
    p_serve.add_argument("--max-pending", type=int, default=256,
                         help="bounded queue: submissions that would "
                         "exceed this many pending shards get 429 + "
                         "Retry-After")
    p_serve.add_argument("--drain-grace", type=float, default=30.0,
                         help="SIGTERM drain: seconds to let in-flight "
                         "leases land before exiting")
    p_serve.add_argument("--max-attempts", type=int, default=None,
                         help="override the service retry policy's "
                         "quarantine threshold")
    p_serve.add_argument("--delay-ms", type=float, default=0.0,
                         help="inject a fixed delay before every response "
                         "(chaos harness fault)")
    p_serve.add_argument("--ready-file", default=None, metavar="PATH",
                         help="write host:port here once listening "
                         "(subprocess orchestration handshake)")
    p_serve.set_defaults(func=_cmd_serve)

    p_worker = sub.add_parser(
        "worker",
        help="run a leased sweep worker against a server",
    )
    p_worker.add_argument("--server", default="http://127.0.0.1:8765",
                          help="server base URL")
    p_worker.add_argument("--name", default="worker",
                          help="worker name (appears in leases and logs)")
    p_worker.add_argument("--poll", type=float, default=0.5,
                          help="seconds between lease polls when idle")
    p_worker.add_argument("--max-shards", type=int, default=None,
                          help="exit after completing this many shards")
    p_worker.add_argument("--idle-exit", type=float, default=None,
                          metavar="SECONDS",
                          help="exit after this long without a lease grant")
    p_worker.add_argument("--drop-heartbeats", action="store_true",
                          help="chaos hook: never heartbeat, so every "
                          "lease expires mid-run")
    p_worker.add_argument("--poison", nargs="+", default=None,
                          metavar="WORKLOAD",
                          help="chaos hook: report failure for these "
                          "workloads without executing them")
    p_worker.set_defaults(func=_cmd_worker)

    p_submit = sub.add_parser(
        "submit",
        help="submit a sweep to a running server over HTTP",
    )
    p_submit.add_argument("--server", default="http://127.0.0.1:8765",
                          help="server base URL")
    p_submit.add_argument("--workloads", nargs="+", default=None,
                          help="workload names (default: all ten)")
    p_submit.add_argument("--filters", nargs="+", default=None,
                          help="filter configuration names")
    p_submit.add_argument("--seeds", type=int, nargs="+", default=None,
                          help="seeds to sweep (default: --seed)")
    p_submit.add_argument("--accesses", type=_count, default=None,
                          help="override per-workload access count")
    p_submit.add_argument("--warmup", type=_count, default=None,
                          help="override per-workload warm-up accesses")
    p_submit.add_argument("--cpus", type=int, default=None,
                          help="SMP width (default: the scaled system's 4)")
    p_submit.add_argument("--preset", default=None,
                          choices=sorted(PRESETS),
                          help="named workload transformation")
    p_submit.add_argument("--stream", action="store_true",
                          help="streamed shards instead of record/replay")
    p_submit.add_argument("--codec", default=None,
                          choices=sorted(SEGMENT_CODECS),
                          help="segment wire format for new recordings "
                          "(replay submissions only)")
    p_submit.add_argument("--measured-only", action="store_true",
                          help="record only measured regions with a "
                          "fast-forward snapshot (replay submissions only)")
    p_submit.add_argument("--wait", action="store_true",
                          help="poll until the job settles, then render "
                          "the coverage table")
    p_submit.add_argument("--timeout", type=float, default=600.0,
                          help="--wait deadline in seconds")
    p_submit.set_defaults(func=_cmd_submit)

    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    try:
        if getattr(args, "store", None):
            experiments.set_store(args.store)
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
