"""Access records and simple stream containers.

The simulator consumes plain ``(cpu, address, is_write)`` tuples; this
module provides a light container for materialised streams plus helpers
to summarise them in tests and examples.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.errors import TraceError


@dataclass
class AccessStream:
    """A materialised interleaved access stream."""

    accesses: list[tuple[int, int, bool]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.accesses)

    def __iter__(self) -> Iterator[tuple[int, int, bool]]:
        return iter(self.accesses)

    def append(self, cpu: int, address: int, is_write: bool) -> None:
        if address < 0:
            raise TraceError(f"negative address {address:#x}")
        self.accesses.append((cpu, address, is_write))

    @classmethod
    def from_iterable(
        cls, accesses: Iterable[tuple[int, int, bool]]
    ) -> "AccessStream":
        stream = cls()
        for cpu, address, is_write in accesses:
            stream.append(cpu, address, is_write)
        return stream

    # ------------------------------------------------------------------

    def write_fraction(self) -> float:
        """Fraction of accesses that are stores."""
        if not self.accesses:
            return 0.0
        return sum(1 for _c, _a, w in self.accesses if w) / len(self.accesses)

    def cpu_histogram(self, n_cpus: int) -> list[int]:
        """Access count per CPU."""
        histogram = [0] * n_cpus
        for cpu, _address, _w in self.accesses:
            if not 0 <= cpu < n_cpus:
                raise TraceError(f"access for CPU {cpu} outside 0..{n_cpus - 1}")
            histogram[cpu] += 1
        return histogram

    def footprint_blocks(self, block_bytes: int = 64) -> int:
        """Number of distinct blocks touched (memory-allocated proxy)."""
        return len({address // block_bytes for _c, address, _w in self.accesses})
