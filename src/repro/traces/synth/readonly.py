"""Widely shared, mostly read-only data.

All processors read a common region, so copies replicate and a miss's
snoop can find copies in one, two, or all other caches — the multi-hit
tail of Table 3 and the paper's stated worst case for JETTY ("an access
to widely-shared data where all caches have a read-only copy", §2).  An
optional trickle of writes invalidates replicas and restarts the
replication, keeping the snoop stream from going fully quiet.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.errors import ConfigurationError
from repro.traces.synth.base import WORD_BYTES, Pattern, geometric_run, skewed_offset


class SharedReadOnly(Pattern):
    """Replicated read sharing over one region.

    Args:
        cpus: the reading processors.
        base: region base byte address.
        region_bytes: shared-region span.
        write_frac: small fraction of stores (invalidation trickle).
        run_mean: mean sequential-run length in words.
        alpha: temporal skew toward the hot front of the region.
    """

    def __init__(
        self,
        cpus: Sequence[int],
        base: int,
        region_bytes: int,
        write_frac: float = 0.02,
        run_mean: int = 6,
        alpha: float = 2.5,
    ) -> None:
        if region_bytes < WORD_BYTES:
            raise ConfigurationError(f"region too small: {region_bytes} B")
        self.cpus = tuple(cpus)
        self.base = base
        self.region_bytes = region_bytes
        self.write_frac = write_frac
        self.run_mean = run_mean
        self.alpha = alpha
        self._cursor: dict[int, tuple[int, int]] = {
            cpu: (base, 0) for cpu in cpus
        }
        self._n_slots = len(self.cpus)
        self._limit = base + region_bytes
        self._region_words = region_bytes // WORD_BYTES

    def next_access(self, rng: random.Random) -> tuple[int, int, bool]:
        # Same draw as randrange(len(cpus)) without its argument parsing.
        cpu = self.cpus[rng._randbelow(self._n_slots)]
        address, remaining = self._cursor[cpu]
        if remaining <= 0 or address >= self._limit:
            offset = skewed_offset(rng, self._region_words, self.alpha)
            address = self.base + offset * WORD_BYTES
            remaining = geometric_run(rng, self.run_mean)
        self._cursor[cpu] = (address + WORD_BYTES, remaining - 1)
        return cpu, address, rng.random() < self.write_frac
