"""Migratory sharing through small critical sections.

Objects protected by locks migrate from processor to processor: each
holder reads then updates the object before the next processor takes it
(paper §3.1 — "migratory sharing in small critical sections when data
migrates from one processor to another").  The take-over read finds
exactly one remote copy (the previous holder's dirty line) and the update
invalidates it, so this pattern feeds both the 1-remote-hit mass and the
upgrade traffic of Table 3.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.errors import ConfigurationError
from repro.traces.synth.base import WORD_BYTES, Pattern


class MigratoryPattern(Pattern):
    """Round-robin object migration with read-modify-write holders.

    Args:
        cpus: processors participating in the migration ring.
        base: byte address of the first object.
        n_objects: number of migrating objects (each one L2 block).
        object_bytes: object size; one 64-byte block by default so a
            hand-off is a single coherence transfer.
        holder_accesses: accesses each holder performs before the object
            migrates (first is the take-over read, the rest alternate
            read/write within the object).
    """

    def __init__(
        self,
        cpus: Sequence[int],
        base: int,
        n_objects: int = 64,
        object_bytes: int = 64,
        holder_accesses: int = 6,
    ) -> None:
        if len(cpus) < 2:
            raise ConfigurationError("migratory sharing needs >= 2 CPUs")
        if n_objects < 1:
            raise ConfigurationError("need at least one migrating object")
        self.cpus = tuple(cpus)
        self.base = base
        self.n_objects = n_objects
        self.object_bytes = object_bytes
        self.holder_accesses = max(2, holder_accesses)
        # Per object: (holder index into cpus, accesses done this hold).
        self._state: list[tuple[int, int]] = [(0, 0) for _ in range(n_objects)]
        self._words = max(1, object_bytes // WORD_BYTES)

    def next_access(self, rng: random.Random) -> tuple[int, int, bool]:
        # randrange(n)'s fast path is exactly _randbelow(n) — same draw,
        # no argument parsing (this runs once per generated access).
        obj = rng._randbelow(self.n_objects)
        holder_index, done = self._state[obj]
        cpu = self.cpus[holder_index]

        words = self._words
        address = self.base + obj * self.object_bytes + (done % words) * WORD_BYTES
        # Take-over access is a read; later accesses alternate write/read,
        # ending the hold with a write (the critical-section update).
        is_write = done > 0 and (done % 2 == 1 or done == self.holder_accesses - 1)

        done += 1
        if done >= self.holder_accesses:
            holder_index = (holder_index + 1) % len(self.cpus)
            done = 0
        self._state[obj] = (holder_index, done)
        return cpu, address, is_write
