"""Synthetic sharing-pattern generators.

Each generator emits ``(cpu, address, is_write)`` accesses reproducing one
of the sharing behaviours the paper identifies as the sources of snoop
traffic.  A workload is a :class:`WorkloadMix` of weighted patterns.
"""

from repro.traces.synth.base import Pattern
from repro.traces.synth.migratory import MigratoryPattern
from repro.traces.synth.mix import MixStream, WorkloadMix
from repro.traces.synth.private import PrivateWorkingSet
from repro.traces.synth.producer_consumer import ProducerConsumer
from repro.traces.synth.readonly import SharedReadOnly
from repro.traces.synth.streaming import StreamingSweep

__all__ = [
    "MigratoryPattern",
    "MixStream",
    "Pattern",
    "PrivateWorkingSet",
    "ProducerConsumer",
    "SharedReadOnly",
    "StreamingSweep",
    "WorkloadMix",
]
