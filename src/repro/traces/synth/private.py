"""Per-processor private working sets.

Models the dominant access class in most of the paper's applications:
data structures touched by a single processor (paper §2 — "a substantial
fraction of L2 misses are to data structures only accessed by a single
processor, resulting in snoop misses in all L2s").  Misses here produce
bus reads whose snoops find no remote copy — the 0-remote-hit mass of
Table 3 — and their locality (sequential runs, hot working-set front) is
what exclude-JETTYs capture.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.errors import ConfigurationError
from repro.traces.synth.base import WORD_BYTES, Pattern, geometric_run, skewed_offset


class PrivateWorkingSet(Pattern):
    """Each CPU walks its own region with temporal and spatial locality.

    Args:
        cpus: the processors this pattern covers.
        bases: region base byte address per CPU (same length as ``cpus``).
        ws_bytes: working-set span per CPU.  A span larger than the L2
            produces capacity/conflict misses (and hence snoops).
        write_frac: fraction of accesses that are stores.
        run_mean: mean sequential-run length in words (spatial locality).
        alpha: temporal skew; larger concentrates reuse near the region
            start (see :func:`~repro.traces.synth.base.skewed_offset`).
    """

    def __init__(
        self,
        cpus: Sequence[int],
        bases: Sequence[int],
        ws_bytes: int,
        write_frac: float = 0.3,
        run_mean: int = 8,
        alpha: float = 2.0,
    ) -> None:
        if len(cpus) != len(bases):
            raise ConfigurationError("need one region base per CPU")
        if ws_bytes < WORD_BYTES:
            raise ConfigurationError(f"working set too small: {ws_bytes} B")
        self.cpus = tuple(cpus)
        self.bases = tuple(bases)
        self.ws_bytes = ws_bytes
        self.write_frac = write_frac
        self.run_mean = run_mean
        self.alpha = alpha
        # Per-CPU cursor state: (next_address, accesses_left_in_run).
        self._cursor: dict[int, tuple[int, int]] = {
            cpu: (base, 0) for cpu, base in zip(cpus, bases)
        }
        self._n_slots = len(self.cpus)
        self._ws_words = ws_bytes // WORD_BYTES
        self._limits = tuple(base + ws_bytes for base in self.bases)

    def next_access(self, rng: random.Random) -> tuple[int, int, bool]:
        # Same draw as randrange(len(cpus)) without its argument parsing;
        # the slot indexes cpus/bases/limits directly (no .index scan).
        slot = rng._randbelow(self._n_slots)
        cpu = self.cpus[slot]
        address, remaining = self._cursor[cpu]
        if remaining <= 0 or address >= self._limits[slot]:
            offset = skewed_offset(rng, self._ws_words, self.alpha)
            address = self.bases[slot] + offset * WORD_BYTES
            remaining = geometric_run(rng, self.run_mean)
        self._cursor[cpu] = (address + WORD_BYTES, remaining - 1)
        return cpu, address, rng.random() < self.write_frac
