"""Weighted mixing of sharing patterns into a full workload stream.

:meth:`WorkloadMix.generate` returns a :class:`MixStream` — a resumable
cursor that can be consumed whole, drained in bounded chunks
(:meth:`MixStream.take` / :meth:`MixStream.chunks`), or checkpointed and
resumed later with its complete RNG and pattern state intact.  The
streaming simulation engine relies on this: a paper-scale trace is never
materialised, and an interrupted run can restart generation from the
last checkpoint instead of the beginning.
"""

from __future__ import annotations

import itertools
import pickle
import random
from collections.abc import Iterator, Sequence

from repro.errors import ConfigurationError
from repro.traces.synth.base import Pattern


class WorkloadMix:
    """Draw each access from one of several patterns by weight.

    The mix is the whole synthetic-application model: e.g. Barnes is
    "mostly private tree walks, some migratory bodies, a widely read
    root region" — expressed as three patterns with weights.

    ``repeat_frac`` re-issues the previous access (as a load, on the same
    CPU) with the given probability.  This models the very-short-range
    reuse real programs exhibit (loop variables, stack slots) that the
    coarse patterns do not: it raises the L1 hit rate toward the paper's
    97-99% without disturbing the L2-level miss and snoop streams.
    """

    def __init__(
        self,
        components: Sequence[tuple[Pattern, float]],
        repeat_frac: float = 0.0,
    ) -> None:
        if not components:
            raise ConfigurationError("a workload mix needs at least one pattern")
        total = sum(weight for _p, weight in components)
        if total <= 0:
            raise ConfigurationError("pattern weights must sum to a positive value")
        if not 0.0 <= repeat_frac < 1.0:
            raise ConfigurationError(f"repeat_frac must be in [0, 1), got {repeat_frac}")
        self.patterns = [pattern for pattern, _w in components]
        self.repeat_frac = repeat_frac
        self._cumulative = list(
            itertools.accumulate(weight / total for _p, weight in components)
        )
        #: (pattern, cumulative bound) pairs, zipped once — the per-access
        #: pick loop must not rebuild a zip object.
        self._choices = tuple(zip(self.patterns, self._cumulative))

    def _pick(self, rng: random.Random) -> Pattern:
        draw = rng.random()
        for pattern, bound in self._choices:
            if draw <= bound:
                return pattern
        return self.patterns[-1]

    def generate(
        self, n_accesses: int, seed: int = 0, fingerprint: str | None = None
    ) -> "MixStream":
        """Return a resumable stream of ``n_accesses`` accesses.

        The stream is an iterator (drop-in for the old generator) drawing
        every random decision from a single seeded RNG, so equal seeds
        reproduce equal streams.  Note that the mix's patterns are
        stateful and shared: interleaving two streams over the *same*
        mix instance correlates them — build a fresh mix per stream.
        ``fingerprint`` stamps the stream with the identity of the spec
        that built it, validated on :meth:`MixStream.resume`.
        """
        return MixStream(self, n_accesses, seed, fingerprint=fingerprint)


class MixStream(Iterator[tuple[int, int, bool]]):
    """A resumable cursor over one :class:`WorkloadMix` access stream.

    Supports three consumption styles on top of plain iteration:

    * :meth:`take` — pop the next bounded chunk as a list;
    * :meth:`chunks` — iterate the rest of the stream chunk by chunk;
    * :meth:`checkpoint` / :meth:`resume` — serialise the complete
      generation state (RNG state, per-pattern cursors, repeat memory,
      position) so a later process can continue the stream exactly where
      this one stopped, without regenerating the prefix.
    """

    def __init__(
        self,
        mix: WorkloadMix,
        n_accesses: int,
        seed: int = 0,
        fingerprint: str | None = None,
    ) -> None:
        self.mix = mix
        self.remaining = n_accesses
        self.position = 0
        #: Identity of the spec/profile that built this stream (a stable
        #: content hash).  Rides inside every checkpoint so resume can
        #: refuse a checkpoint generated under a different configuration
        #: instead of silently continuing a diverged stream.
        self.fingerprint = fingerprint
        self._rng = random.Random(seed)
        self._last: tuple[int, int, bool] | None = None

    def __next__(self) -> tuple[int, int, bool]:
        if self.remaining <= 0:
            raise StopIteration
        self.remaining -= 1
        self.position += 1
        rng = self._rng
        last = self._last
        if last is not None and rng.random() < self.mix.repeat_frac:
            cpu, address, _w = last
            return cpu, address, False
        self._last = self.mix._pick(rng).next_access(rng)
        return self._last

    def take(self, count: int) -> list[tuple[int, int, bool]]:
        """Pop up to ``count`` accesses (shorter only at end of stream).

        This is the batch fast path the simulation engine drives
        (:func:`repro.coherence.smp.iter_batches`): the batch list is
        preallocated and filled by an inline copy of the :meth:`__next__`
        logic with the RNG, repeat fraction, and pattern picker hoisted
        to locals — identical draw sequence, none of the per-access
        iterator-frame overhead.
        """
        n = min(count, self.remaining)
        if n <= 0:
            return []
        out: list[tuple[int, int, bool]] = [None] * n  # type: ignore[list-item]
        rand = self._rng.random
        rng = self._rng
        mix = self.mix
        repeat_frac = mix.repeat_frac
        pick = mix._pick
        last = self._last
        for i in range(n):
            if last is not None and rand() < repeat_frac:
                cpu, address, _w = last
                out[i] = (cpu, address, False)
            else:
                last = pick(rng).next_access(rng)
                out[i] = last
        self._last = last
        self.remaining -= n
        self.position += n
        return out

    def chunks(self, chunk_size: int) -> Iterator[list[tuple[int, int, bool]]]:
        """Yield the remaining accesses as bounded, in-order chunks."""
        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        while True:
            chunk = self.take(chunk_size)
            if not chunk:
                return
            yield chunk

    def checkpoint(self) -> bytes:
        """Serialise the full generation state (RNG, patterns, position)."""
        return pickle.dumps(self)

    @staticmethod
    def resume(blob: bytes, fingerprint: str | None = None) -> "MixStream":
        """Rebuild a stream from :meth:`checkpoint`; continues exactly.

        With ``fingerprint``, the checkpointed stream's own fingerprint
        must match or :class:`ConfigurationError` is raised — resuming a
        checkpoint that was generated under a different profile or spec
        would silently produce a diverged access stream, the one failure
        the byte-identical determinism contract cannot detect downstream.

        .. warning:: ``blob`` is a pickle and is executed on load —
           resume only checkpoints you wrote yourself, from storage you
           trust, exactly like any other pickle-based checkpoint file.
           The checks below catch mix-ups (wrong file fed back, stale
           chain under a changed spec), not tampering.
        """
        stream = pickle.loads(blob)
        if not isinstance(stream, MixStream):
            raise ConfigurationError(
                f"not a MixStream checkpoint: {type(stream).__name__}"
            )
        check_stream_fingerprint(stream, fingerprint)
        return stream


def check_stream_fingerprint(stream, fingerprint: str | None) -> None:
    """Refuse a resumed stream whose spec fingerprint does not match.

    ``None`` skips the check (legacy call sites that carry no identity);
    a checkpoint written before fingerprints existed reads as ``None``
    and never matches a requested fingerprint — stale chains fail loudly
    rather than generating a diverged stream.
    """
    if fingerprint is None:
        return
    found = getattr(stream, "fingerprint", None)
    if found != fingerprint:
        raise ConfigurationError(
            "stream checkpoint fingerprint mismatch: checkpoint carries "
            f"{found!r}, resume expects {fingerprint!r} — refusing to "
            "continue a stream generated under a different configuration"
        )
