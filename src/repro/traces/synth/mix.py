"""Weighted mixing of sharing patterns into a full workload stream."""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterator, Sequence

from repro.errors import ConfigurationError
from repro.traces.synth.base import Pattern


class WorkloadMix:
    """Draw each access from one of several patterns by weight.

    The mix is the whole synthetic-application model: e.g. Barnes is
    "mostly private tree walks, some migratory bodies, a widely read
    root region" — expressed as three patterns with weights.

    ``repeat_frac`` re-issues the previous access (as a load, on the same
    CPU) with the given probability.  This models the very-short-range
    reuse real programs exhibit (loop variables, stack slots) that the
    coarse patterns do not: it raises the L1 hit rate toward the paper's
    97-99% without disturbing the L2-level miss and snoop streams.
    """

    def __init__(
        self,
        components: Sequence[tuple[Pattern, float]],
        repeat_frac: float = 0.0,
    ) -> None:
        if not components:
            raise ConfigurationError("a workload mix needs at least one pattern")
        total = sum(weight for _p, weight in components)
        if total <= 0:
            raise ConfigurationError("pattern weights must sum to a positive value")
        if not 0.0 <= repeat_frac < 1.0:
            raise ConfigurationError(f"repeat_frac must be in [0, 1), got {repeat_frac}")
        self.patterns = [pattern for pattern, _w in components]
        self.repeat_frac = repeat_frac
        self._cumulative = list(
            itertools.accumulate(weight / total for _p, weight in components)
        )

    def _pick(self, rng: random.Random) -> Pattern:
        draw = rng.random()
        for pattern, bound in zip(self.patterns, self._cumulative):
            if draw <= bound:
                return pattern
        return self.patterns[-1]

    def generate(
        self, n_accesses: int, seed: int = 0
    ) -> Iterator[tuple[int, int, bool]]:
        """Yield ``n_accesses`` interleaved accesses, reproducibly."""
        rng = random.Random(seed)
        last: tuple[int, int, bool] | None = None
        for _ in range(n_accesses):
            if last is not None and rng.random() < self.repeat_frac:
                cpu, address, _w = last
                yield cpu, address, False
                continue
            last = self._pick(rng).next_access(rng)
            yield last
