"""Producer/consumer sharing between processor pairs.

"The most common form of (either migratory or producer/consumer) sharing
occurs among two processors resulting in snoop misses in all but a single
L2" (paper §2).  A pair alternates phases: the producer writes a buffer,
then the consumer reads it.  Consumer read misses snoop the bus and find
exactly one copy (the producer's dirty line); producer rewrites invalidate
the consumer's copy and likewise find one remote copy.  This pattern is
the main source of Table 3's 1-remote-hit mass.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.errors import ConfigurationError
from repro.traces.synth.base import WORD_BYTES, Pattern


class ProducerConsumer(Pattern):
    """Phase-alternating buffer hand-off between CPU pairs.

    Args:
        pairs: ``(producer, consumer)`` CPU pairs.
        bases: buffer base address per pair.
        buffer_bytes: size of each pair's shared buffer.
        consumer_reads_per_word: how many times the consumer re-reads each
            word per phase (models reduction loops reading inputs twice).
    """

    def __init__(
        self,
        pairs: Sequence[tuple[int, int]],
        bases: Sequence[int],
        buffer_bytes: int = 8192,
        consumer_reads_per_word: int = 1,
    ) -> None:
        if len(pairs) != len(bases):
            raise ConfigurationError("need one buffer base per pair")
        if buffer_bytes < WORD_BYTES:
            raise ConfigurationError(f"buffer too small: {buffer_bytes} B")
        self.pairs = tuple(pairs)
        self.bases = tuple(bases)
        self.words = buffer_bytes // WORD_BYTES
        self.consumer_reads = max(1, consumer_reads_per_word)
        # Per pair: (producing?, word position, repeat counter).
        self._state: list[tuple[bool, int, int]] = [
            (True, 0, 0) for _ in self.pairs
        ]
        self._n_pairs = len(self.pairs)

    def next_access(self, rng: random.Random) -> tuple[int, int, bool]:
        # Same draw as randrange(len(pairs)) without its argument parsing.
        pair_index = rng._randbelow(self._n_pairs)
        producer, consumer = self.pairs[pair_index]
        base = self.bases[pair_index]
        producing, position, repeat = self._state[pair_index]

        address = base + position * WORD_BYTES
        if producing:
            cpu, is_write = producer, True
            position += 1
            if position >= self.words:
                producing, position = False, 0
        else:
            cpu, is_write = consumer, False
            repeat += 1
            if repeat >= self.consumer_reads:
                repeat = 0
                position += 1
                if position >= self.words:
                    producing, position = True, 0
        self._state[pair_index] = (producing, position, repeat)
        return cpu, address, is_write
