"""Pattern interface and shared generator helpers."""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

#: Access granularity of the simulated processors (bytes per load/store).
WORD_BYTES = 8


class Pattern(ABC):
    """A stateful source of ``(cpu, address, is_write)`` accesses.

    Patterns are driven one access at a time so a
    :class:`~repro.traces.synth.mix.WorkloadMix` can interleave several of
    them with arbitrary weights.  All randomness comes from the ``rng``
    passed in, keeping whole workloads reproducible from a single seed.
    """

    @abstractmethod
    def next_access(self, rng: random.Random) -> tuple[int, int, bool]:
        """Produce the next access of this pattern."""


def skewed_offset(rng: random.Random, span: int, alpha: float) -> int:
    """Draw an offset in ``[0, span)`` with a power-law skew toward 0.

    ``alpha == 1`` is uniform; larger values concentrate accesses near the
    region start, modelling a hot working-set front the way trace studies
    characterise temporal locality.
    """
    return min(int(span * (rng.random() ** alpha)), span - 1)


def geometric_run(rng: random.Random, mean: int) -> int:
    """Draw a sequential-run length with the given mean (>= 1)."""
    if mean <= 1:
        return 1
    # Geometric with success probability 1/mean.
    length = 1
    probability = 1.0 / mean
    while rng.random() > probability:
        length += 1
        if length >= mean * 8:  # bound the tail
            break
    return length
