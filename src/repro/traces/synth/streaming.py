"""Streaming sweeps over large partitioned arrays (Em3d-like).

Each processor repeatedly sweeps its own partition of a large array —
far bigger than the L2 — so nearly every block access misses and snoops
the bus, and almost no snoop finds a remote copy.  This is the
snoop-dominated regime of Em3d and Ocean in Table 2 (snoop-induced L2
accesses several times the local access count).  The sequential block
order gives exclude-JETTYs with presence vectors (VEJ) their spatial
locality to exploit.

An optional ``remote_frac`` redirects some reads to the *next* CPU's
partition boundary, modelling Em3d's remote graph edges (its input is
"15% remote"): those reads find one remote copy.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.errors import ConfigurationError
from repro.traces.synth.base import WORD_BYTES, Pattern


class StreamingSweep(Pattern):
    """Cyclic sequential sweeps over per-CPU partitions.

    Args:
        cpus: the sweeping processors.
        bases: partition base per CPU.
        partition_bytes: partition span per CPU (should exceed the L2).
        write_frac: fraction of stores (updates written during the sweep).
        remote_frac: fraction of accesses that read from the next CPU's
            partition instead (boundary/ghost-cell reads).
        boundary_bytes: span of the neighbour window those reads touch.
    """

    def __init__(
        self,
        cpus: Sequence[int],
        bases: Sequence[int],
        partition_bytes: int,
        write_frac: float = 0.25,
        remote_frac: float = 0.0,
        boundary_bytes: int = 4096,
    ) -> None:
        if len(cpus) != len(bases):
            raise ConfigurationError("need one partition base per CPU")
        if partition_bytes < WORD_BYTES:
            raise ConfigurationError(f"partition too small: {partition_bytes} B")
        self.cpus = tuple(cpus)
        self.bases = tuple(bases)
        self.partition_bytes = partition_bytes
        self.write_frac = write_frac
        self.remote_frac = remote_frac
        self.boundary_bytes = min(boundary_bytes, partition_bytes)
        self._cursor: dict[int, int] = {cpu: 0 for cpu in cpus}
        self._n_slots = len(self.cpus)
        self._boundary_words = self.boundary_bytes // WORD_BYTES

    def next_access(self, rng: random.Random) -> tuple[int, int, bool]:
        # rng._randbelow(n) is exactly what randrange(n) calls for a
        # positive stop — same bits consumed, same value, minus the
        # argument-parsing overhead (this is the per-access hot path).
        slot = rng._randbelow(self._n_slots)
        cpu = self.cpus[slot]

        if self.remote_frac > 0.0 and rng.random() < self.remote_frac:
            # Ghost-cell read trailing just behind the neighbour's sweep
            # cursor — data the neighbour touched recently and still
            # caches, so the snoop finds exactly one remote copy.
            neighbour_slot = slot + 1
            if neighbour_slot == self._n_slots:
                neighbour_slot = 0
            neighbour_cpu = self.cpus[neighbour_slot]
            delta = (1 + rng._randbelow(self._boundary_words)) * WORD_BYTES
            offset = (self._cursor[neighbour_cpu] - delta) % self.partition_bytes
            return cpu, self.bases[neighbour_slot] + offset, False

        offset = self._cursor[cpu]
        address = self.bases[slot] + offset
        self._cursor[cpu] = (offset + WORD_BYTES) % self.partition_bytes
        return cpu, address, rng.random() < self.write_frac
