"""Trace substrate: access streams and synthetic SPLASH-2-style workloads.

The paper drives its simulator with traces of ten shared-memory
applications collected under the Wisconsin Wind Tunnel 2.  Neither WWT2
nor the original binaries/inputs are available here, so this package
builds the closest synthetic equivalent: per-CPU access streams composed
from the sharing patterns the paper itself names as the sources of snoop
behaviour (§2, §3.1) —

* private working sets with temporal/spatial locality (conflict misses
  whose snoops miss everywhere),
* producer/consumer sharing between processor pairs,
* migratory sharing through small critical sections,
* widely shared read-only data (the JETTY worst case),
* streaming sweeps over large arrays (Em3d-like).

Each of the paper's ten applications (Table 2) is modelled as a weighted
mix of these patterns, tuned so the simulated remote-hit distribution and
hit rates land near Tables 2–3.  See DESIGN.md's substitution table.
"""

from repro.traces.access import AccessStream
from repro.traces.interleave import random_interleave, round_robin
from repro.traces.synth import (
    MigratoryPattern,
    MixStream,
    Pattern,
    PrivateWorkingSet,
    ProducerConsumer,
    SharedReadOnly,
    StreamingSweep,
    WorkloadMix,
)
from repro.traces.workloads import (
    PRESETS,
    WORKLOADS,
    PaperReference,
    WorkloadSpec,
    apply_preset,
    build_workload_stream,
    get_workload,
    resume_stream,
    stream_fingerprint,
)
from repro.traces.profiles import (  # noqa: E402 — needs workloads loaded
    PROFILE_ORDER,
    PROFILES,
    SharingProfile,
    get_profile,
)
from repro.traces.suite import (  # noqa: E402 — needs profiles loaded
    SUITE_ORDER,
    SUITES,
    Phase,
    PhaseSpec,
    Suite,
    SuiteSpec,
    SuiteStream,
    canonical_suite,
)

__all__ = [
    "AccessStream",
    "MigratoryPattern",
    "MixStream",
    "PRESETS",
    "PROFILES",
    "PROFILE_ORDER",
    "Pattern",
    "PaperReference",
    "Phase",
    "PhaseSpec",
    "PrivateWorkingSet",
    "ProducerConsumer",
    "SUITES",
    "SUITE_ORDER",
    "SharedReadOnly",
    "SharingProfile",
    "StreamingSweep",
    "Suite",
    "SuiteSpec",
    "SuiteStream",
    "WORKLOADS",
    "WorkloadMix",
    "WorkloadSpec",
    "apply_preset",
    "build_workload_stream",
    "canonical_suite",
    "get_profile",
    "get_workload",
    "random_interleave",
    "resume_stream",
    "round_robin",
    "stream_fingerprint",
]
