"""The ten evaluation workloads of Table 2, as synthetic pattern mixes.

Each entry models one paper application (eight SPLASH-2 programs plus
Em3d and Unstructured) as a weighted mix of sharing patterns.  The mix
weights and working-set spans were tuned against the paper's published
per-application statistics — L2 local hit rate (Table 2) and the snoop
remote-hit distribution (Table 3) — which are recorded verbatim in each
spec's :class:`PaperReference` so the benches can print paper-vs-measured
side by side.

Address layout: every pattern instance gets its own region, spaced 4 MB
apart, so block addresses carry the region structure in their upper bits.
This mirrors real allocators (per-thread heaps, distinct global arrays)
and is what gives the include-JETTY's higher-order index fields their
discriminating power.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from collections.abc import Sequence
from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError, WorkloadError
from repro.traces.synth import (
    MigratoryPattern,
    MixStream,
    PrivateWorkingSet,
    ProducerConsumer,
    SharedReadOnly,
    StreamingSweep,
    WorkloadMix,
)
from repro.traces.synth.mix import check_stream_fingerprint

#: Spacing between pattern regions (4 MB) — far enough apart that region
#: identity is visible in block-address bits 16 and up.
REGION_BYTES = 1 << 22

#: First region base (keeps address 0 unused).
REGION_FLOOR = 1 << 22

KB = 1024


@dataclass(frozen=True)
class PaperReference:
    """Published per-application numbers (paper Tables 2 and 3)."""

    accesses_millions: float
    memory_mbytes: float
    l1_hit_rate: float
    l2_hit_rate: float
    snoop_accesses_millions: float
    #: Fraction of snoops finding copies in 0, 1, 2, 3 other caches.
    remote_hits: tuple[float, float, float, float]
    #: Snoop-induced tag accesses that miss, as a fraction of snoops.
    snoop_miss_of_snoops: float
    #: ... and as a fraction of all L2 accesses.
    snoop_miss_of_all: float


class _RegionAllocator:
    """Deterministic bump allocator for pattern regions.

    Each region is additionally staggered by a deterministic sub-offset
    (multiple of 4 KB, below half a region).  Without the stagger every
    region would start at L2 set 0 — an alignment pathology real memory
    allocators do not exhibit — concentrating inter-pattern conflicts in
    the low cache sets.
    """

    def __init__(self) -> None:
        self._index = 0

    def take(self, count: int = 1) -> list[int]:
        bases = []
        for _ in range(count):
            stagger = ((self._index * 2654435761) >> 8) % (REGION_BYTES // 2)
            stagger &= ~0xFFF  # keep 4 KB alignment
            bases.append(REGION_FLOOR + self._index * REGION_BYTES + stagger)
            self._index += 1
        return bases

    def take_partitions(self, count: int, partition_bytes: int) -> list[int]:
        """Adjacent per-CPU partitions inside one shared array.

        SPLASH-style programs allocate one large array and partition it
        across processors, so per-CPU partitions share their upper address
        bits and only middle bits identify the owner.  Using one region
        here (rather than one region per CPU) keeps the include-JETTY's
        high-order index fields from discriminating between processors'
        data "for free" — matching the paper-scale situation.
        """
        span = count * partition_bytes
        regions_needed = -(-span // REGION_BYTES)  # ceiling division
        base = self.take(1)[0]
        # Reserve the extra regions the partitioned span covers.
        self._index += max(0, regions_needed - 1)
        return [base + i * partition_bytes for i in range(count)]


@dataclass(frozen=True)
class WorkloadSpec:
    """One named workload: metadata, paper reference, and mix recipe."""

    name: str
    abbrev: str
    description: str
    paper: PaperReference
    n_accesses: int = 200_000
    #: Accesses used to warm the caches before statistics start.
    warmup_accesses: int = 120_000
    #: Probability of re-issuing the previous access (short-range reuse
    #: raising the L1 hit rate toward the paper's; see WorkloadMix).
    repeat_frac: float = 0.0
    #: Mix recipe: list of (kind, params) consumed by :func:`_build_pattern`.
    recipe: tuple[tuple[str, dict], ...] = field(default_factory=tuple)

    def build_mix(self, n_cpus: int = 4) -> WorkloadMix:
        """Instantiate the pattern mix for an ``n_cpus``-way system."""
        return build_recipe_mix(self.recipe, self.repeat_frac, n_cpus)

    def memory_bytes(self, n_cpus: int = 4) -> int:
        """Total data footprint of the recipe (Table 2's "MA" column)."""
        total = 0
        for kind, params in self.recipe:
            if kind == "private":
                total += params["ws_bytes"] * n_cpus
            elif kind == "streaming":
                total += params["partition_bytes"] * n_cpus
            elif kind == "producer_consumer":
                pairs = min(params.get("n_pairs", n_cpus), n_cpus)
                total += params.get("buffer_bytes", 8 * KB) * pairs
            elif kind == "migratory":
                total += params.get("n_objects", 64) * 64
            elif kind == "shared_readonly":
                total += params["region_bytes"]
        return total


def build_recipe_mix(
    recipe: Sequence[tuple[str, dict]],
    repeat_frac: float = 0.0,
    n_cpus: int = 4,
) -> WorkloadMix:
    """Instantiate a pattern-mix recipe with a fresh region allocator.

    The shared factory behind :meth:`WorkloadSpec.build_mix`, the
    sharing-profile library (:mod:`repro.traces.profiles`), and each
    phase of a suite (:mod:`repro.traces.suite`): every caller gets its
    own deterministic region layout starting from region 0.
    """
    allocator = _RegionAllocator()
    components = []
    for kind, params in recipe:
        pattern, weight = _build_pattern(kind, params, n_cpus, allocator)
        components.append((pattern, weight))
    return WorkloadMix(components, repeat_frac=repeat_frac)


def _pairs_for(n_cpus: int) -> list[tuple[int, int]]:
    """Neighbour CPU pairs: (0,1), (1,2), ..., wrapping around."""
    return [(i, (i + 1) % n_cpus) for i in range(n_cpus)]


def _build_pattern(kind: str, params: dict, n_cpus: int, allocator: _RegionAllocator):
    """Construct one pattern of the recipe, allocating its regions."""
    cpus = list(range(n_cpus))
    weight = params["weight"]
    if kind == "private":
        return (
            PrivateWorkingSet(
                cpus,
                allocator.take_partitions(n_cpus, params["ws_bytes"]),
                ws_bytes=params["ws_bytes"],
                write_frac=params.get("write_frac", 0.3),
                run_mean=params.get("run_mean", 8),
                alpha=params.get("alpha", 2.0),
            ),
            weight,
        )
    if kind == "streaming":
        return (
            StreamingSweep(
                cpus,
                allocator.take_partitions(n_cpus, params["partition_bytes"]),
                partition_bytes=params["partition_bytes"],
                write_frac=params.get("write_frac", 0.25),
                remote_frac=params.get("remote_frac", 0.0),
                boundary_bytes=params.get("boundary_bytes", 4096),
            ),
            weight,
        )
    if kind == "producer_consumer":
        pairs = _pairs_for(n_cpus)[: params.get("n_pairs", n_cpus)]
        return (
            ProducerConsumer(
                pairs,
                allocator.take(len(pairs)),
                buffer_bytes=params.get("buffer_bytes", 8 * KB),
                consumer_reads_per_word=params.get("consumer_reads", 1),
            ),
            weight,
        )
    if kind == "migratory":
        return (
            MigratoryPattern(
                cpus,
                allocator.take(1)[0],
                n_objects=params.get("n_objects", 64),
                holder_accesses=params.get("holder_accesses", 6),
            ),
            weight,
        )
    if kind == "shared_readonly":
        return (
            SharedReadOnly(
                cpus,
                allocator.take(1)[0],
                region_bytes=params["region_bytes"],
                write_frac=params.get("write_frac", 0.02),
                run_mean=params.get("run_mean", 6),
                alpha=params.get("alpha", 2.5),
            ),
            weight,
        )
    raise WorkloadError(f"unknown pattern kind {kind!r}")


def _spec(
    name: str,
    abbrev: str,
    description: str,
    paper: PaperReference,
    recipe: Sequence[tuple[str, dict]],
    n_accesses: int = 200_000,
    repeat_frac: float = 0.0,
    warmup_accesses: int | None = None,
) -> WorkloadSpec:
    if warmup_accesses is None:
        # Scale the warm-up so roughly 40k non-repeat accesses (enough to
        # populate a 64 KB L2 per CPU) precede measurement.
        warmup_accesses = int(40_000 / max(0.05, 1.0 - repeat_frac))
    return WorkloadSpec(
        name=name,
        abbrev=abbrev,
        description=description,
        paper=paper,
        n_accesses=n_accesses,
        warmup_accesses=warmup_accesses,
        repeat_frac=repeat_frac,
        recipe=tuple(recipe),
    )


WORKLOADS: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in [
        _spec(
            "barnes",
            "ba",
            "Hierarchical N-body: private tree walks, migrating bodies, "
            "widely read (occasionally rebuilt) root cells.",
            PaperReference(967.0, 57.4, 0.978, 0.317, 47.1,
                           (0.47, 0.28, 0.15, 0.10), 0.71, 0.48),
            [
                ("private", dict(weight=0.26, ws_bytes=44 * KB, alpha=1.2)),
                ("private", dict(weight=0.28, ws_bytes=448 * KB, alpha=1.2,
                                 run_mean=16)),
                ("migratory", dict(weight=0.06, n_objects=48)),
                ("shared_readonly", dict(weight=0.40, region_bytes=24 * KB,
                                         write_frac=0.03, alpha=1.1)),
            ],
            repeat_frac=0.78,
            n_accesses=320_000,
        ),
        _spec(
            "cholesky",
            "ch",
            "Sparse factorisation: dominant private panels, light hand-off.",
            PaperReference(224.4, 26.3, 0.980, 0.642, 9.9,
                           (0.92, 0.05, 0.03, 0.00), 0.95, 0.59),
            [
                ("private", dict(weight=0.72, ws_bytes=48 * KB, alpha=1.2)),
                ("private", dict(weight=0.18, ws_bytes=320 * KB, alpha=1.3,
                                 run_mean=16)),
                ("producer_consumer", dict(weight=0.06, n_pairs=2,
                                           buffer_bytes=8 * KB)),
                ("shared_readonly", dict(weight=0.04, region_bytes=20 * KB,
                                         write_frac=0.04, alpha=1.3)),
            ],
            repeat_frac=0.80,
            n_accesses=320_000,
        ),
        _spec(
            "em3d",
            "em",
            "Electromagnetic wave propagation: streaming sweeps with remote "
            "graph edges (15% remote input); snoop-dominated.",
            PaperReference(333.4, 34.4, 0.765, 0.233, 252.6,
                           (0.80, 0.17, 0.02, 0.01), 0.92, 0.69),
            [
                ("streaming", dict(weight=0.57, partition_bytes=768 * KB,
                                   remote_frac=0.10, write_frac=0.3,
                                   boundary_bytes=8 * KB)),
                ("private", dict(weight=0.37, ws_bytes=40 * KB, alpha=1.2)),
                ("shared_readonly", dict(weight=0.06, region_bytes=16 * KB,
                                         write_frac=0.03, alpha=1.3)),
            ],
            repeat_frac=0.30,
            n_accesses=220_000,
        ),
        _spec(
            "fft",
            "ff",
            "Radix-sqrt(n) FFT: private butterflies, transpose hand-offs.",
            PaperReference(60.2, 12.7, 0.968, 0.363, 7.5,
                           (0.93, 0.07, 0.00, 0.00), 0.98, 0.73),
            [
                ("private", dict(weight=0.51, ws_bytes=48 * KB, alpha=1.2)),
                ("private", dict(weight=0.35, ws_bytes=448 * KB, alpha=1.2,
                                 run_mean=16)),
                ("producer_consumer", dict(weight=0.14, n_pairs=2,
                                           buffer_bytes=16 * KB)),
            ],
            repeat_frac=0.72,
            n_accesses=280_000,
        ),
        _spec(
            "fmm",
            "fm",
            "Fast multipole: small hot private sets, migrating interaction "
            "lists.",
            PaperReference(1751.2, 36.1, 0.996, 0.812, 8.1,
                           (0.82, 0.15, 0.02, 0.01), 0.93, 0.39),
            [
                ("private", dict(weight=0.86, ws_bytes=44 * KB, alpha=1.2)),
                ("private", dict(weight=0.065, ws_bytes=512 * KB, alpha=1.2,
                                 run_mean=16)),
                ("migratory", dict(weight=0.035, n_objects=64)),
                ("shared_readonly", dict(weight=0.04, region_bytes=20 * KB,
                                         write_frac=0.03, alpha=1.3)),
            ],
            repeat_frac=0.85,
            n_accesses=400_000,
        ),
        _spec(
            "lu",
            "lu",
            "Blocked dense LU: private blocks, pivot row/column hand-off.",
            PaperReference(188.7, 4.6, 0.957, 0.825, 6.3,
                           (0.73, 0.26, 0.01, 0.00), 0.91, 0.39),
            [
                ("private", dict(weight=0.79, ws_bytes=44 * KB, alpha=1.2)),
                ("private", dict(weight=0.04, ws_bytes=384 * KB, alpha=1.2,
                                 run_mean=16)),
                ("producer_consumer", dict(weight=0.17, n_pairs=4,
                                           buffer_bytes=8 * KB)),
            ],
            repeat_frac=0.76,
            n_accesses=320_000,
        ),
        _spec(
            "ocean",
            "oc",
            "Ocean currents: nearest-neighbour grids dominated by private "
            "partitions far larger than L2.",
            PaperReference(182.8, 41.6, 0.835, 0.522, 90.0,
                           (0.97, 0.03, 0.00, 0.00), 0.99, 0.66),
            [
                ("private", dict(weight=0.68, ws_bytes=52 * KB, alpha=1.2,
                                 run_mean=12)),
                ("private", dict(weight=0.27, ws_bytes=384 * KB, alpha=1.2,
                                 run_mean=16)),
                ("producer_consumer", dict(weight=0.05, n_pairs=4,
                                           buffer_bytes=4 * KB)),
            ],
            repeat_frac=0.45,
            n_accesses=220_000,
        ),
        _spec(
            "radix",
            "ra",
            "Radix sort: private histograms plus streaming permutation "
            "writes to private output partitions.",
            PaperReference(399.4, 82.1, 0.962, 0.794, 42.6,
                           (1.00, 0.00, 0.00, 0.00), 1.00, 0.56),
            [
                ("private", dict(weight=0.80, ws_bytes=44 * KB, alpha=1.2)),
                ("streaming", dict(weight=0.20, partition_bytes=320 * KB,
                                   write_frac=0.55)),
            ],
            repeat_frac=0.75,
            n_accesses=320_000,
        ),
        _spec(
            "raytrace",
            "rt",
            "Ray tracing: read-only scene geometry partitioned by image "
            "tile; almost no inter-processor reuse.",
            PaperReference(299.9, 69.1, 0.983, 0.466, 12.3,
                           (1.00, 0.00, 0.00, 0.00), 1.00, 0.69),
            [
                ("private", dict(weight=0.62, ws_bytes=48 * KB,
                                 write_frac=0.0, alpha=1.2, run_mean=5)),
                ("private", dict(weight=0.33, ws_bytes=640 * KB,
                                 write_frac=0.0, alpha=1.2, run_mean=10)),
                ("private", dict(weight=0.05, ws_bytes=24 * KB,
                                 write_frac=0.9, alpha=2.0)),
            ],
            repeat_frac=0.82,
            n_accesses=320_000,
        ),
        _spec(
            "unstructured",
            "un",
            "CFD on an irregular mesh: heavy pairwise edge exchange, some "
            "widely shared boundary nodes.",
            PaperReference(1693.6, 3.5, 0.924, 0.787, 304.8,
                           (0.33, 0.55, 0.04, 0.08), 0.71, 0.28),
            [
                ("private", dict(weight=0.585, ws_bytes=40 * KB, alpha=1.2)),
                ("private", dict(weight=0.01, ws_bytes=320 * KB, alpha=1.2,
                                 run_mean=16)),
                ("producer_consumer", dict(weight=0.30, n_pairs=4,
                                           buffer_bytes=12 * KB,
                                           consumer_reads=2)),
                ("migratory", dict(weight=0.035, n_objects=32)),
                ("shared_readonly", dict(weight=0.07, region_bytes=12 * KB,
                                         write_frac=0.02, alpha=1.0)),
            ],
            repeat_frac=0.66,
            n_accesses=320_000,
        ),
    ]
}

#: Paper presentation order (Tables 2-3, Figures 4-6).
WORKLOAD_ORDER = tuple(WORKLOADS)


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload, suite, or two-letter abbreviation by name."""
    if name in WORKLOADS:
        return WORKLOADS[name]
    for spec in WORKLOADS.values():
        if spec.abbrev == name:
            return spec
    # Phase-structured suites live in their own registry; the import is
    # lazy because repro.traces.suite builds on this module.
    from repro.traces.suite import SUITES

    if name in SUITES:
        return SUITES[name]
    raise WorkloadError(
        f"unknown workload {name!r}; choose from "
        f"{sorted(WORKLOADS) + sorted(SUITES)}"
    )


def stream_fingerprint(
    spec: WorkloadSpec,
    n_cpus: int = 4,
    seed: int = 0,
    n_accesses: int | None = None,
    include_warmup: bool = False,
) -> str:
    """Stable content hash of everything that shapes an access stream.

    Stamped onto every stream built by :func:`build_workload_stream` and
    carried inside stream checkpoints, so a resume under a different
    spec, phase structure, seed, or CPU count is refused instead of
    silently generating a diverged stream.  Intentionally independent of
    the experiment store's spec fingerprint: this one hashes the stream
    *inputs* (including seed and topology), not the cache identity.
    """
    payload = {
        "name": spec.name,
        "n_accesses": spec.n_accesses if n_accesses is None else n_accesses,
        "warmup_accesses": spec.warmup_accesses,
        "include_warmup": bool(include_warmup),
        "repeat_frac": spec.repeat_frac,
        "recipe": [[kind, params] for kind, params in spec.recipe],
        "n_cpus": n_cpus,
        "seed": seed,
    }
    phases = getattr(spec, "phases", ())
    if phases:
        payload["phases"] = [
            [p.name, p.accesses, p.repeat_frac,
             [[kind, params] for kind, params in p.recipe]]
            for p in phases
        ]
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def build_workload_stream(
    spec: WorkloadSpec | str,
    n_cpus: int = 4,
    n_accesses: int | None = None,
    seed: int = 0,
    include_warmup: bool = False,
):
    """Generate the interleaved access stream for one workload.

    The returned :class:`~repro.traces.synth.MixStream` is a lazy,
    resumable cursor: iterate it whole, drain it in bounded chunks
    (``stream.chunks(n)``), or checkpoint/resume it — paper-scale traces
    are never materialised.

    With ``include_warmup`` the stream is prefixed by the spec's warm-up
    accesses (pass ``warmup=spec.warmup_accesses`` to
    :func:`repro.coherence.smp.simulate` to exclude them from statistics).

    Phase-structured suites (:class:`repro.traces.suite.SuiteSpec`)
    return a :class:`repro.traces.suite.SuiteStream` — same cursor
    protocol, one per-phase sub-stream concatenated per the suite's
    scaled phase schedule.
    """
    if isinstance(spec, str):
        spec = get_workload(spec)
    fingerprint = stream_fingerprint(
        spec,
        n_cpus=n_cpus,
        seed=seed,
        n_accesses=n_accesses,
        include_warmup=include_warmup,
    )
    if getattr(spec, "phases", ()):
        from repro.traces.suite import build_suite_stream

        return build_suite_stream(
            spec,
            n_cpus=n_cpus,
            n_accesses=n_accesses,
            seed=seed,
            include_warmup=include_warmup,
            fingerprint=fingerprint,
        )
    mix = spec.build_mix(n_cpus)
    count = spec.n_accesses if n_accesses is None else n_accesses
    if include_warmup:
        count += spec.warmup_accesses
    # Distinct (but process-independent) seed per workload so equal seeds
    # do not correlate streams across workloads.
    stream_seed = seed * 1_000_003 + zlib.crc32(spec.name.encode())
    return mix.generate(count, seed=stream_seed, fingerprint=fingerprint)


def resume_stream(blob: bytes, fingerprint: str | None = None):
    """Resume any checkpointed access stream, validating its identity.

    Dispatch-free counterpart to :meth:`MixStream.resume` /
    :meth:`SuiteStream.resume`: accepts a checkpoint from either stream
    type and, when ``fingerprint`` is given (from
    :func:`stream_fingerprint` with the resume-side spec/seed/topology),
    refuses a checkpoint generated under a different configuration with
    :class:`~repro.errors.ConfigurationError`.
    """
    import pickle

    from repro.traces.suite import SuiteStream

    stream = pickle.loads(blob)
    if not isinstance(stream, (MixStream, SuiteStream)):
        raise ConfigurationError(
            f"not a stream checkpoint: {type(stream).__name__}"
        )
    check_stream_fingerprint(stream, fingerprint)
    return stream


def simulate_workload_accesses(
    spec: WorkloadSpec | str, n_cpus: int = 4, seed: int = 0
) -> tuple[MixStream, int]:
    """Return ``(stream_with_warmup, warmup_count)`` ready for simulate()."""
    if isinstance(spec, str):
        spec = get_workload(spec)
    stream = build_workload_stream(spec, n_cpus=n_cpus, seed=seed, include_warmup=True)
    return stream, spec.warmup_accesses


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------

#: Access-count ceiling for the ``paper-scale`` preset.  Table 2's traces
#: range from tens of millions to ~1.75 billion references; the cap keeps
#: the preset's worst case at a size a pure-Python overnight run can
#: absorb while still being two orders of magnitude past the seed sizes.
PAPER_SCALE_CAP = 25_000_000


def paper_scale(spec: WorkloadSpec, cap: int = PAPER_SCALE_CAP) -> WorkloadSpec:
    """Scale a spec to its paper-reported trace length (Table 2, capped).

    Only ``n_accesses`` changes: warm-up is a property of the cache
    geometry, not the trace length, so the spec's warm-up count is kept.
    Run these through the streaming engine
    (:func:`repro.analysis.runner.evaluate_streaming` or
    ``repro sweep --stream``) — buffered mode would materialise the full
    event trace.
    """
    target = int(spec.paper.accesses_millions * 1_000_000)
    if cap:
        target = min(target, cap)
    return replace(spec, n_accesses=max(target, spec.n_accesses))


#: Named spec transformations selectable from the CLI (``--preset``).
PRESETS = {
    "paper-scale": paper_scale,
}


def apply_preset(spec: WorkloadSpec, preset: str) -> WorkloadSpec:
    """Apply a named preset transformation to one workload spec."""
    try:
        transform = PRESETS[preset]
    except KeyError:
        raise WorkloadError(
            f"unknown preset {preset!r}; choose from {sorted(PRESETS)}"
        ) from None
    return transform(spec)
