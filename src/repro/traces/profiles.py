"""Production sharing-profile library: named, parameterised mix factories.

Where :mod:`repro.traces.workloads` models the paper's ten applications,
this module catalogues the underlying *sharing behaviours* themselves as
reusable profiles — the workload classes a datacenter capacity model
would speak of (a read-mostly web tier, a scan-heavy analytics tier, a
lock-migratory transactional tier) rather than individual benchmarks.

Each profile is a parameterised factory: the module-level functions
(:func:`zipf_hot`, :func:`producer_consumer_burst`, ...) take tuning
knobs and return a frozen :class:`SharingProfile` whose
:meth:`~SharingProfile.fingerprint` is a stable content hash of the
fully resolved recipe.  The :data:`PROFILES` registry holds the default
parameterisation of each factory; phase-structured suites
(:mod:`repro.traces.suite`) compose profiles into multi-phase workloads.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.traces.synth import WorkloadMix
from repro.traces.workloads import KB, WorkloadSpec, build_recipe_mix

#: Zeroed placeholder for specs that model a workload class rather than
#: one of the paper's measured applications (no Table 2/3 row to cite).
_NO_PAPER_FIELDS = dict(
    accesses_millions=0.0,
    memory_mbytes=0.0,
    l1_hit_rate=0.0,
    l2_hit_rate=0.0,
    snoop_accesses_millions=0.0,
    remote_hits=(0.0, 0.0, 0.0, 0.0),
    snoop_miss_of_snoops=0.0,
    snoop_miss_of_all=0.0,
)


@dataclass(frozen=True)
class SharingProfile:
    """One named sharing behaviour: a recipe plus its content identity.

    ``recipe`` uses the same ``(kind, params)`` grammar as
    :class:`~repro.traces.workloads.WorkloadSpec` and is built by the
    same :func:`~repro.traces.workloads.build_recipe_mix` factory, so a
    profile *is* a WorkloadMix factory — :meth:`build_mix` instantiates
    it fresh (own region allocator, own pattern state) per call.
    """

    name: str
    description: str
    recipe: tuple[tuple[str, dict], ...]
    #: Short-range reuse probability (see :class:`WorkloadMix`).
    repeat_frac: float = 0.0

    def build_mix(self, n_cpus: int = 4) -> WorkloadMix:
        """Instantiate the profile's pattern mix for ``n_cpus`` CPUs."""
        return build_recipe_mix(self.recipe, self.repeat_frac, n_cpus)

    def fingerprint(self) -> str:
        """Stable content hash of the fully resolved profile.

        Hashes the resolved recipe (every parameter, not the factory
        name), so two parameterisations of the same factory get distinct
        fingerprints and a re-tuned profile never masquerades as its old
        self in stored results or stream checkpoints.
        """
        payload = {
            "name": self.name,
            "repeat_frac": self.repeat_frac,
            "recipe": [[kind, params] for kind, params in self.recipe],
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def to_spec(
        self,
        n_accesses: int = 160_000,
        warmup_accesses: int | None = None,
    ) -> WorkloadSpec:
        """Wrap the profile as a single-phase workload spec.

        Gives a bare profile a seat in every spec-driven code path
        (``run_sweep``, the experiment store, golden tests) without a
        suite around it.
        """
        from repro.traces.workloads import PaperReference

        if warmup_accesses is None:
            warmup_accesses = int(40_000 / max(0.05, 1.0 - self.repeat_frac))
        return WorkloadSpec(
            name=f"profile:{self.name}",
            abbrev=self.name[:2],
            description=self.description,
            paper=PaperReference(**_NO_PAPER_FIELDS),
            n_accesses=n_accesses,
            warmup_accesses=warmup_accesses,
            repeat_frac=self.repeat_frac,
            recipe=self.recipe,
        )


# ----------------------------------------------------------------------
# Profile factories (parameterised; defaults feed the PROFILES registry)
# ----------------------------------------------------------------------


def zipf_hot(
    hot_kb: int = 12,
    alpha: float = 3.0,
    write_frac: float = 0.05,
    private_kb: int = 40,
    hot_weight: float = 0.55,
    repeat_frac: float = 0.55,
) -> SharingProfile:
    """Zipfian-skewed hot blocks: a tiny shared set absorbs most snoops.

    The classic cache-friendly skew (popular keys, hot locks): a small
    widely read region under a steep Zipf(``alpha``) with occasional
    invalidating writes, over a base of private state.  Snoops mostly
    *hit* remotely — the JETTY-family worst case, since exclude filters
    learn nothing from blocks that are genuinely present everywhere.
    """
    return SharingProfile(
        name="zipf-hot",
        description="Zipf-skewed hot shared blocks over private state; "
        "snoops concentrate on a tiny, widely cached set.",
        recipe=(
            ("shared_readonly", dict(weight=hot_weight, region_bytes=hot_kb * KB,
                                     write_frac=write_frac, alpha=alpha)),
            ("private", dict(weight=1.0 - hot_weight, ws_bytes=private_kb * KB,
                             alpha=1.2)),
        ),
        repeat_frac=repeat_frac,
    )


def producer_consumer_burst(
    n_pairs: int = 4,
    buffer_kb: int = 6,
    consumer_reads: int = 2,
    pc_weight: float = 0.5,
    private_kb: int = 36,
    repeat_frac: float = 0.5,
) -> SharingProfile:
    """Bursty producer–consumer: hand-off buffers ping-pong between pairs.

    Neighbour CPU pairs exchange small buffers (producer writes a burst,
    consumer reads it back ``consumer_reads`` times), so snoops find the
    line in exactly one remote cache and ownership keeps flipping —
    the pattern that stresses a filter's update latency.
    """
    return SharingProfile(
        name="producer-consumer-burst",
        description="Bursty pairwise hand-off buffers over private "
        "compute; single-remote-hit snoops with flipping ownership.",
        recipe=(
            ("producer_consumer", dict(weight=pc_weight, n_pairs=n_pairs,
                                       buffer_bytes=buffer_kb * KB,
                                       consumer_reads=consumer_reads)),
            ("private", dict(weight=1.0 - pc_weight, ws_bytes=private_kb * KB,
                             alpha=1.2)),
        ),
        repeat_frac=repeat_frac,
    )


def migratory_heavy(
    n_objects: int = 48,
    holder_accesses: int = 6,
    mig_weight: float = 0.30,
    private_kb: int = 40,
    repeat_frac: float = 0.55,
) -> SharingProfile:
    """Migratory-heavy: critical-section objects hop from CPU to CPU.

    Lock-protected records (``n_objects`` of them) are read-modified by
    one holder at a time for ``holder_accesses`` accesses, then migrate.
    Every migration is a remote dirty hit followed by an invalidation —
    transactional-tier behaviour.
    """
    return SharingProfile(
        name="migratory-heavy",
        description="Critical-section objects migrating between holders "
        "over private state; remote dirty hits dominate snoops.",
        recipe=(
            ("migratory", dict(weight=mig_weight, n_objects=n_objects,
                               holder_accesses=holder_accesses)),
            ("private", dict(weight=1.0 - mig_weight, ws_bytes=private_kb * KB,
                             alpha=1.2)),
        ),
        repeat_frac=repeat_frac,
    )


def read_mostly_web(
    shared_kb: int = 96,
    write_frac: float = 0.004,
    alpha: float = 1.4,
    shared_weight: float = 0.6,
    session_kb: int = 28,
    repeat_frac: float = 0.7,
) -> SharingProfile:
    """Read-mostly web tier: a large, almost-never-written shared corpus.

    Templates, config, and cached content shared by every CPU with a
    mild popularity skew and rare invalidating updates, plus small
    per-CPU session state.  After warm-up nearly every snoop would hit
    remotely; the interesting question is how much a filter still saves
    on the private-session misses.
    """
    return SharingProfile(
        name="read-mostly-web",
        description="Large read-mostly shared corpus with rare updates "
        "plus small per-CPU session state (web-serving tier).",
        recipe=(
            ("shared_readonly", dict(weight=shared_weight,
                                     region_bytes=shared_kb * KB,
                                     write_frac=write_frac, alpha=alpha)),
            ("private", dict(weight=1.0 - shared_weight,
                             ws_bytes=session_kb * KB, alpha=1.6)),
        ),
        repeat_frac=repeat_frac,
    )


def scan_stream(
    partition_kb: int = 640,
    write_frac: float = 0.2,
    remote_frac: float = 0.05,
    stream_weight: float = 0.7,
    private_kb: int = 32,
    repeat_frac: float = 0.3,
) -> SharingProfile:
    """Scan/stream tier: sequential sweeps over partitions far beyond L2.

    Analytics-style table scans: each CPU sweeps its own large partition
    (with a small ``remote_frac`` of cross-partition reads at the
    boundaries), so misses are compulsory/capacity and snoops almost
    always miss everywhere — the exclude-filter best case.
    """
    return SharingProfile(
        name="scan-stream",
        description="Sequential scans over per-CPU partitions larger "
        "than cache; snoops nearly always miss remotely (analytics tier).",
        recipe=(
            ("streaming", dict(weight=stream_weight,
                               partition_bytes=partition_kb * KB,
                               write_frac=write_frac,
                               remote_frac=remote_frac,
                               boundary_bytes=8 * KB)),
            ("private", dict(weight=1.0 - stream_weight,
                             ws_bytes=private_kb * KB, alpha=1.2)),
        ),
        repeat_frac=repeat_frac,
    )


def private_compute(
    ws_kb: int = 44,
    spill_kb: int = 384,
    spill_weight: float = 0.12,
    repeat_frac: float = 0.75,
) -> SharingProfile:
    """Private compute: per-CPU working sets, effectively no sharing.

    Batch/HPC kernels on partitioned data: a hot per-CPU set plus a
    colder spill region.  All snoop traffic comes from conflict misses,
    and every snoop misses in every remote cache — the upper bound on
    what any snoop filter can save.
    """
    return SharingProfile(
        name="private-compute",
        description="Per-CPU private working sets with a cold spill "
        "region; essentially every snoop misses remotely.",
        recipe=(
            ("private", dict(weight=1.0 - spill_weight, ws_bytes=ws_kb * KB,
                             alpha=1.2)),
            ("private", dict(weight=spill_weight, ws_bytes=spill_kb * KB,
                             alpha=1.2, run_mean=16)),
        ),
        repeat_frac=repeat_frac,
    )


def shared_hot_write(
    hot_kb: int = 8,
    write_frac: float = 0.18,
    alpha: float = 2.2,
    hot_weight: float = 0.35,
    n_objects: int = 24,
    private_kb: int = 36,
    repeat_frac: float = 0.5,
) -> SharingProfile:
    """Write-shared hot set: contended counters and frequently-taken locks.

    A small shared region written nearly a fifth of the time (statistics
    counters, sequence locks) combined with migratory lock records —
    heavy invalidation traffic that churns remote directories and filter
    state alike.
    """
    return SharingProfile(
        name="shared-hot-write",
        description="Small write-contended shared set plus migratory "
        "locks; invalidation churn stresses filter state.",
        recipe=(
            ("shared_readonly", dict(weight=hot_weight, region_bytes=hot_kb * KB,
                                     write_frac=write_frac, alpha=alpha)),
            ("migratory", dict(weight=0.12, n_objects=n_objects,
                               holder_accesses=4)),
            ("private", dict(weight=1.0 - hot_weight - 0.12,
                             ws_bytes=private_kb * KB, alpha=1.2)),
        ),
        repeat_frac=repeat_frac,
    )


def mixed_tier(
    repeat_frac: float = 0.6,
) -> SharingProfile:
    """Balanced mix: every sharing behaviour at moderate weight.

    The "no dominant pattern" control: private compute, a streaming
    component, pairwise hand-off, migratory locks, and a read-mostly
    shared region all present at once.  Filters that win here win on
    breadth, not on exploiting one pathology.
    """
    return SharingProfile(
        name="mixed-tier",
        description="All five sharing behaviours at moderate weight; "
        "the no-dominant-pattern control workload.",
        recipe=(
            ("private", dict(weight=0.45, ws_bytes=40 * KB, alpha=1.2)),
            ("streaming", dict(weight=0.18, partition_bytes=256 * KB,
                               write_frac=0.25)),
            ("producer_consumer", dict(weight=0.15, n_pairs=3,
                                       buffer_bytes=8 * KB)),
            ("migratory", dict(weight=0.07, n_objects=32)),
            ("shared_readonly", dict(weight=0.15, region_bytes=20 * KB,
                                     write_frac=0.03, alpha=1.5)),
        ),
        repeat_frac=repeat_frac,
    )


#: Default parameterisation of every profile factory, in catalogue order.
PROFILES: dict[str, SharingProfile] = {
    profile.name: profile
    for profile in (
        zipf_hot(),
        producer_consumer_burst(),
        migratory_heavy(),
        read_mostly_web(),
        scan_stream(),
        private_compute(),
        shared_hot_write(),
        mixed_tier(),
    )
}

#: Catalogue presentation order.
PROFILE_ORDER = tuple(PROFILES)


def get_profile(name: str) -> SharingProfile:
    """Look up a profile by name in the default registry."""
    try:
        return PROFILES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown sharing profile {name!r}; choose from {sorted(PROFILES)}"
        ) from None
