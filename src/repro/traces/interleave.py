"""Interleaving per-CPU access streams onto the shared bus order.

The functional simulator needs one global order.  ``round_robin`` models
lock-step progress (what WWT2's quantum-based execution approximates);
``random_interleave`` draws the next CPU at random, which stresses
protocol corner cases in the property tests.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Iterator, Sequence


def round_robin(
    streams: Sequence[Iterable[tuple[int, bool]]],
) -> Iterator[tuple[int, int, bool]]:
    """Merge per-CPU ``(address, is_write)`` streams cyclically.

    Exhausted streams drop out; the merge continues until all are empty.
    """
    iterators = [iter(s) for s in streams]
    live = list(range(len(iterators)))
    while live:
        finished = []
        for cpu in live:
            try:
                address, is_write = next(iterators[cpu])
            except StopIteration:
                finished.append(cpu)
                continue
            yield cpu, address, is_write
        for cpu in finished:
            live.remove(cpu)


def random_interleave(
    streams: Sequence[Iterable[tuple[int, bool]]],
    seed: int = 0,
) -> Iterator[tuple[int, int, bool]]:
    """Merge per-CPU streams in a uniformly random (seeded) order."""
    rng = random.Random(seed)
    iterators = [iter(s) for s in streams]
    live = list(range(len(iterators)))
    while live:
        cpu = rng.choice(live)
        try:
            address, is_write = next(iterators[cpu])
        except StopIteration:
            live.remove(cpu)
            continue
        yield cpu, address, is_write
