"""Phase-structured workload suites: compose sharing profiles over time.

Real services are not stationary: a web tier warms its cache, then an
analytics scan sweeps through, then steady state resumes.  A *suite*
expresses exactly that —

    Suite([
        Phase("warm", "read-mostly-web", 80_000),
        Phase("scan", "scan-stream", 60_000),
        Phase("settle", "read-mostly-web", 80_000),
    ], name="flip-web-scan")

— and produces a :class:`SuiteSpec`, a drop-in
:class:`~repro.traces.workloads.WorkloadSpec` whose phase boundaries
are emitted as PHASE marker events through the packed event stream
(flag-encoded alongside the warm-up MARKER; see
:mod:`repro.core.stats`).  Both replay kernels split statistics at the
markers, so every :class:`~repro.core.stats.FilterEvaluation` for a
suite carries byte-identical per-phase metrics in ``phases`` across
live-streamed, recorded-replay, and checkpoint-resumed runs.

Phase lengths scale proportionally when ``n_accesses`` is overridden
(``--accesses``, presets): boundaries are fixed fractions of the run,
not absolute counts.
"""

from __future__ import annotations

import pickle
import zlib
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.traces.profiles import PROFILES, SharingProfile, get_profile
from repro.traces.synth.mix import check_stream_fingerprint
from repro.traces.workloads import (
    PaperReference,
    WorkloadSpec,
    build_recipe_mix,
)


@dataclass(frozen=True)
class PhaseSpec:
    """One resolved phase: a named slice of the run under one profile.

    Self-contained: the profile's recipe is copied in at construction,
    so a suite's identity (and its stream fingerprint) captures the
    profile *as parameterised then*, not whatever the registry holds
    later.
    """

    name: str
    #: Name of the profile this phase was built from (informational).
    profile: str
    #: Nominal accesses at the suite's nominal length; actual phase
    #: lengths are scaled proportionally to the effective ``n_accesses``.
    accesses: int
    repeat_frac: float
    recipe: tuple[tuple[str, dict], ...]


def Phase(
    name: str,
    profile: SharingProfile | str,
    accesses: int,
) -> PhaseSpec:
    """Declare one suite phase: ``accesses`` accesses under ``profile``.

    ``profile`` is a :class:`SharingProfile` or a registry name
    (:data:`~repro.traces.profiles.PROFILES`).  The profile is resolved
    *now* — the returned :class:`PhaseSpec` owns a copy of its recipe.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    if accesses < 1:
        raise ConfigurationError(
            f"phase {name!r} needs a positive access count, got {accesses}"
        )
    return PhaseSpec(
        name=name,
        profile=profile.name,
        accesses=accesses,
        repeat_frac=profile.repeat_frac,
        recipe=profile.recipe,
    )


@dataclass(frozen=True)
class SuiteSpec(WorkloadSpec):
    """A workload spec whose run is partitioned into profile phases.

    Everything spec-shaped downstream (``run_sweep``, the experiment
    store, ``replace(spec, n_accesses=...)`` overrides) works unchanged;
    the phase structure only surfaces where it must — stream building
    (:func:`build_suite_stream`), PHASE-mark scheduling
    (:meth:`phase_marks`), and the store's spec fingerprint.
    """

    phases: tuple[PhaseSpec, ...] = ()

    def phase_names(self) -> tuple[str, ...]:
        """Phase names in run order (index ``i`` names PHASE ``i``)."""
        return tuple(p.name for p in self.phases)

    def phase_starts(self, n_accesses: int | None = None) -> tuple[int, ...]:
        """Measured-region offsets where each phase begins.

        Nominal phase lengths are scaled to the effective ``n_accesses``
        by monotone cumulative scaling (``start = cum * n // total``), so
        boundaries stay ordered, phase 0 starts at 0, and lengths sum
        exactly to ``n`` for any override.
        """
        n = self.n_accesses if n_accesses is None else n_accesses
        total = sum(p.accesses for p in self.phases)
        starts = []
        cum = 0
        for p in self.phases:
            starts.append(cum * n // total)
            cum += p.accesses
        return tuple(starts)

    def phase_marks(
        self,
        n_accesses: int | None = None,
        warmup_accesses: int | None = None,
    ) -> tuple[int, ...]:
        """Absolute stream positions (warm-up included) of PHASE marks.

        Mark ``i`` is the position where phase ``i`` *starts*; mark 0
        lands exactly on the warm-up boundary, so the PHASE(0) marker is
        emitted just after the warm-up MARKER and the whole measured
        region is covered by phases.
        """
        warmup = (
            self.warmup_accesses if warmup_accesses is None else warmup_accesses
        )
        return tuple(warmup + s for s in self.phase_starts(n_accesses))


def Suite(
    phases: Sequence[PhaseSpec],
    name: str | None = None,
    description: str = "",
    warmup_accesses: int = 40_000,
) -> SuiteSpec:
    """Compose phases into a :class:`SuiteSpec` (the suite DSL entry).

    ``n_accesses`` is the sum of the nominal phase lengths; phase names
    must be unique (they key the per-phase metric splits).
    """
    phases = tuple(phases)
    if not phases:
        raise ConfigurationError("a suite needs at least one phase")
    names = [p.name for p in phases]
    if len(set(names)) != len(names):
        raise ConfigurationError(
            f"duplicate phase names in suite: {names} — per-phase metrics "
            "are keyed by name"
        )
    if name is None:
        name = "suite(" + ",".join(names) + ")"
    if not description:
        description = "Phase-structured suite: " + " -> ".join(
            f"{p.name}[{p.profile}]" for p in phases
        )
    return SuiteSpec(
        name=name,
        abbrev=name[:2],
        description=description,
        paper=PaperReference(
            0.0, 0.0, 0.0, 0.0, 0.0, (0.0, 0.0, 0.0, 0.0), 0.0, 0.0
        ),
        n_accesses=sum(p.accesses for p in phases),
        warmup_accesses=warmup_accesses,
        repeat_frac=0.0,
        recipe=(),
        phases=phases,
    )


class SuiteStream(Iterator[tuple[int, int, bool]]):
    """Concatenated per-phase streams behind the MixStream cursor protocol.

    Each phase gets its own freshly built mix and
    :class:`~repro.traces.synth.MixStream` (independent pattern state
    and RNG, deterministically seeded per phase); this cursor walks them
    in order.  ``take``/``chunks``/iteration/``checkpoint``/``resume``
    behave exactly like a single MixStream, so the simulation engine and
    checkpoint ladder are phase-agnostic.
    """

    def __init__(self, streams, fingerprint: str | None = None) -> None:
        if not streams:
            raise ConfigurationError("a suite stream needs at least one phase")
        self._streams = list(streams)
        self._cursor = 0
        #: Suite-level identity (see workloads.stream_fingerprint);
        #: rides inside every checkpoint, validated on resume.
        self.fingerprint = fingerprint

    @property
    def remaining(self) -> int:
        return sum(s.remaining for s in self._streams[self._cursor:])

    @property
    def position(self) -> int:
        return sum(s.position for s in self._streams[: self._cursor + 1])

    def __next__(self) -> tuple[int, int, bool]:
        while self._cursor < len(self._streams):
            stream = self._streams[self._cursor]
            if stream.remaining > 0:
                return next(stream)
            self._cursor += 1
        raise StopIteration

    def take(self, count: int) -> list[tuple[int, int, bool]]:
        """Pop up to ``count`` accesses, crossing phase boundaries."""
        first = self._streams[self._cursor].take(count)
        if self._streams[self._cursor].remaining > 0 or self._cursor + 1 >= len(
            self._streams
        ):
            return first
        # Phase exhausted mid-batch: stitch from the following phases.
        out = first
        while len(out) < count and self._cursor + 1 < len(self._streams):
            self._cursor += 1
            out.extend(self._streams[self._cursor].take(count - len(out)))
        return out

    def chunks(self, chunk_size: int):
        """Yield the remaining accesses as bounded, in-order chunks."""
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        while True:
            chunk = self.take(chunk_size)
            if not chunk:
                return
            yield chunk

    def checkpoint(self) -> bytes:
        """Serialise all phase cursors (consumed phases included)."""
        return pickle.dumps(self)

    @staticmethod
    def resume(blob: bytes, fingerprint: str | None = None) -> "SuiteStream":
        """Rebuild from :meth:`checkpoint`, validating suite identity.

        Same contract (and the same pickle trust caveat) as
        :meth:`repro.traces.synth.MixStream.resume`.
        """
        stream = pickle.loads(blob)
        if not isinstance(stream, SuiteStream):
            raise ConfigurationError(
                f"not a SuiteStream checkpoint: {type(stream).__name__}"
            )
        check_stream_fingerprint(stream, fingerprint)
        return stream


def build_suite_stream(
    spec: SuiteSpec,
    n_cpus: int = 4,
    n_accesses: int | None = None,
    seed: int = 0,
    include_warmup: bool = False,
    fingerprint: str | None = None,
) -> SuiteStream:
    """Build the concatenated access stream for a suite.

    Phase ``i`` draws from its own mix seeded by the suite seed mixed
    with the phase's index and name — reordering, renaming, or resizing
    any phase changes exactly the streams it should.  Warm-up accesses
    (when included) extend phase 0's stream, matching
    :meth:`SuiteSpec.phase_marks` placing mark 0 at the warm-up
    boundary.
    """
    n = spec.n_accesses if n_accesses is None else n_accesses
    starts = spec.phase_starts(n)
    ends = starts[1:] + (n,)
    lengths = [end - start for start, end in zip(starts, ends)]
    if include_warmup:
        lengths[0] += spec.warmup_accesses
    base = seed * 1_000_003 + zlib.crc32(spec.name.encode())
    streams = []
    for index, (phase, length) in enumerate(zip(spec.phases, lengths)):
        mix = build_recipe_mix(phase.recipe, phase.repeat_frac, n_cpus)
        phase_seed = base + zlib.crc32(f"{index}:{phase.name}".encode())
        streams.append(mix.generate(length, seed=phase_seed))
    return SuiteStream(streams, fingerprint=fingerprint)


# ----------------------------------------------------------------------
# Canonical suites
# ----------------------------------------------------------------------


def canonical_suite(profile: SharingProfile | str) -> SuiteSpec:
    """The profile's standard two-phase suite: ``ramp`` then ``steady``.

    Both phases run the same profile; the split separates the filter's
    learning transient (ramp: the measured region right after warm-up)
    from its converged behaviour (steady).  This is the per-profile row
    generator for the evaluation matrix.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    return Suite(
        [
            Phase("ramp", profile, 40_000),
            Phase("steady", profile, 120_000),
        ],
        name=profile.name,
        description=f"Canonical ramp/steady suite for {profile.name}: "
        + profile.description,
    )


def _flip_suites() -> list[SuiteSpec]:
    """Named phase-flipping mixes: profiles alternating mid-run."""
    return [
        Suite(
            [
                Phase("web", "read-mostly-web", 70_000),
                Phase("scan", "scan-stream", 50_000),
                Phase("settle", "read-mostly-web", 70_000),
            ],
            name="flip-web-scan",
            description="Read-mostly web tier interrupted by an "
            "analytics scan, then settling back.",
        ),
        Suite(
            [
                Phase("hot", "zipf-hot", 60_000),
                Phase("txn", "migratory-heavy", 60_000),
                Phase("burst", "producer-consumer-burst", 60_000),
            ],
            name="flip-hot-txn-burst",
            description="Zipf-hot reads flipping to migratory "
            "transactions, then a producer-consumer burst.",
        ),
    ]


#: Named suite registry: one canonical ramp/steady suite per profile
#: (keyed by the profile name) plus the phase-flipping mixes.  Resolved
#: by :func:`repro.traces.workloads.get_workload` after the application
#: workloads, so every suite name works anywhere a workload name does.
SUITES: dict[str, SuiteSpec] = {
    **{name: canonical_suite(name) for name in PROFILES},
    **{suite.name: suite for suite in _flip_suites()},
}

#: Presentation order: profiles first (catalogue order), then flips.
SUITE_ORDER = tuple(SUITES)
