"""Trace persistence: save and load access streams as .npz files.

The paper's methodology is trace-driven (WWT2 traces fed a memory-system
simulator).  This module gives the same workflow to library users:
generate a synthetic stream once, archive it, and replay it across
experiments — or import externally collected traces in the same format.

Format: a compressed numpy archive with three equal-length arrays,

* ``cpu``     — uint16 processor ids,
* ``address`` — uint64 physical byte addresses,
* ``is_write``— bool store flags,

plus a ``meta`` array holding a format-version tag.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from pathlib import Path

import numpy as np

from repro.errors import TraceError

#: Format version written into every archive.
FORMAT_VERSION = 1

_META_KEY = "jetty_trace_version"


def save_trace(
    path: str | Path,
    accesses: Iterable[tuple[int, int, bool]],
) -> int:
    """Write an access stream to ``path``; returns the access count."""
    cpus: list[int] = []
    addresses: list[int] = []
    writes: list[bool] = []
    for cpu, address, is_write in accesses:
        if cpu < 0 or address < 0:
            raise TraceError(f"invalid access ({cpu}, {address:#x})")
        cpus.append(cpu)
        addresses.append(address)
        writes.append(is_write)
    np.savez_compressed(
        Path(path),
        cpu=np.asarray(cpus, dtype=np.uint16),
        address=np.asarray(addresses, dtype=np.uint64),
        is_write=np.asarray(writes, dtype=bool),
        **{_META_KEY: np.asarray([FORMAT_VERSION], dtype=np.int64)},
    )
    return len(cpus)


def load_trace(path: str | Path) -> Iterator[tuple[int, int, bool]]:
    """Yield ``(cpu, address, is_write)`` tuples from an archive."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    with np.load(path) as archive:
        _validate_archive(archive, path)
        cpus = archive["cpu"]
        addresses = archive["address"]
        writes = archive["is_write"]
    for cpu, address, is_write in zip(cpus, addresses, writes):
        yield int(cpu), int(address), bool(is_write)


def trace_length(path: str | Path) -> int:
    """Number of accesses in an archive, without materialising them."""
    with np.load(Path(path)) as archive:
        _validate_archive(archive, path)
        return int(archive["cpu"].shape[0])


def _validate_archive(archive, path) -> None:
    for key in ("cpu", "address", "is_write", _META_KEY):
        if key not in archive:
            raise TraceError(f"{path} is not a JETTY trace archive (missing {key})")
    version = int(archive[_META_KEY][0])
    if version != FORMAT_VERSION:
        raise TraceError(
            f"{path} has trace format version {version}; "
            f"this library reads version {FORMAT_VERSION}"
        )
    lengths = {
        archive["cpu"].shape[0],
        archive["address"].shape[0],
        archive["is_write"].shape[0],
    }
    if len(lengths) != 1:
        raise TraceError(f"{path} has mismatched array lengths: {lengths}")
