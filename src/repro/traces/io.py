"""Trace persistence: save and load access streams as .npz files.

The paper's methodology is trace-driven (WWT2 traces fed a memory-system
simulator).  This module gives the same workflow to library users:
generate a synthetic stream once, archive it, and replay it across
experiments — or import externally collected traces in the same format.

Format (version 2): a compressed numpy archive with three equal-length
arrays,

* ``cpu``           — uint16 processor ids,
* ``address_delta`` — int64 first-order differences of the physical
  byte addresses (first element is the first address itself); the
  loader rebuilds absolutes with one ``np.cumsum``.  Address streams
  have strong spatial locality, so deltas are small, repetitive
  integers that deflate far better than raw 64-bit absolutes,
* ``is_write``      — bool store flags,

plus a ``meta`` array holding a format-version tag.  Version-1 archives
(absolute uint64 ``address`` array) are still read; version 1 is also
still *written* for the pathological case of addresses at or above
2^63, where an int64 delta could overflow.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from pathlib import Path

import numpy as np

from repro.errors import TraceError

#: Format version written into every archive (see the fallback above).
FORMAT_VERSION = 2

#: Oldest version :func:`load_trace` still reads.
_SUPPORTED_VERSIONS = (1, 2)

_META_KEY = "jetty_trace_version"


def save_trace(
    path: str | Path,
    accesses: Iterable[tuple[int, int, bool]],
) -> int:
    """Write an access stream to ``path``; returns the access count."""
    cpus: list[int] = []
    addresses: list[int] = []
    writes: list[bool] = []
    for cpu, address, is_write in accesses:
        if cpu < 0 or address < 0:
            raise TraceError(f"invalid access ({cpu}, {address:#x})")
        cpus.append(cpu)
        addresses.append(address)
        writes.append(is_write)
    address_arr = np.asarray(addresses, dtype=np.uint64)
    columns = {
        "cpu": np.asarray(cpus, dtype=np.uint16),
        "is_write": np.asarray(writes, dtype=bool),
    }
    if address_arr.size and int(address_arr.max()) >= 1 << 63:
        # Deltas between addresses in the top half of the 64-bit space
        # can overflow int64 — fall back to absolute (version 1) form.
        columns["address"] = address_arr
        version = 1
    else:
        columns["address_delta"] = np.diff(
            address_arr.astype(np.int64), prepend=np.int64(0)
        )
        version = FORMAT_VERSION
    np.savez_compressed(
        Path(path),
        **columns,
        **{_META_KEY: np.asarray([version], dtype=np.int64)},
    )
    return len(cpus)


def _addresses(archive) -> np.ndarray:
    """The archive's absolute address array, whatever its version."""
    if int(archive[_META_KEY][0]) == 1:
        return archive["address"]
    deltas = archive["address_delta"]
    return np.cumsum(deltas, dtype=np.int64).astype(np.uint64)


def load_trace(path: str | Path) -> Iterator[tuple[int, int, bool]]:
    """Yield ``(cpu, address, is_write)`` tuples from an archive."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    with np.load(path) as archive:
        _validate_archive(archive, path)
        cpus = archive["cpu"]
        addresses = _addresses(archive)
        writes = archive["is_write"]
    for cpu, address, is_write in zip(cpus, addresses, writes):
        yield int(cpu), int(address), bool(is_write)


def trace_length(path: str | Path) -> int:
    """Number of accesses in an archive, without materialising them."""
    with np.load(Path(path)) as archive:
        _validate_archive(archive, path)
        return int(archive["cpu"].shape[0])


def _validate_archive(archive, path) -> None:
    for key in ("cpu", "is_write", _META_KEY):
        if key not in archive:
            raise TraceError(f"{path} is not a JETTY trace archive (missing {key})")
    version = int(archive[_META_KEY][0])
    if version not in _SUPPORTED_VERSIONS:
        raise TraceError(
            f"{path} has trace format version {version}; "
            f"this library reads versions {_SUPPORTED_VERSIONS}"
        )
    address_key = "address" if version == 1 else "address_delta"
    if address_key not in archive:
        raise TraceError(
            f"{path} is not a JETTY trace archive (missing {address_key})"
        )
    lengths = {
        archive["cpu"].shape[0],
        archive[address_key].shape[0],
        archive["is_write"].shape[0],
    }
    if len(lengths) != 1:
        raise TraceError(f"{path} has mismatched array lengths: {lengths}")
