"""The top-level SMP system: nodes, bus, and the trace-driven run loop.

:class:`SMPSystem` wires :class:`~repro.coherence.node.CacheNode` objects
to a shared :class:`~repro.coherence.bus.Bus` and consumes an interleaved
access stream.  :func:`simulate` is the one-call buffered entry point
used by the experiment harness; :func:`simulate_streaming` is its
single-pass sibling for paper-scale traces.

**Shard/marker protocol (streaming mode).**  In buffered mode every node
appends the events its JETTY would observe (SNOOP/ALLOC/EVICT, plus the
warm-up MARKER) to an unbounded per-node list that ships inside the
:class:`~repro.coherence.metrics.SimResult`.  In streaming mode the run
is cut into *chunks* of at most ``chunk_size`` accesses; after each chunk
:meth:`SMPSystem.take_shard` detaches the per-node event lists — one
bounded *shard* per node, in node order — and hands them to the attached
consumers (e.g. :class:`~repro.core.stats.StreamingFilterBank`, or a
:class:`TraceSink` persisting the run for later replay), then the
nodes start fresh lists.  Because events are only ever appended in global
access order and a shard boundary never reorders or drops anything, the
per-node concatenation of all shards is exactly the event list buffered
mode would have recorded.  The warm-up MARKER is emitted by
:meth:`SMPSystem.begin_measurement` *between* chunks and therefore rides
at the front of the next shard — consumers see it at the same position
in the event sequence as a buffered replay would.

**Determinism contract.**  A simulation is a pure function of
``(config, access stream)``: node statistics, bus statistics, and the
event sequence are identical whether the run is buffered or streamed,
whatever the chunk size, and whichever process executes it.  Downstream,
filter evaluations derived from the shards are byte-identical to
buffered replays (``tests/test_streaming.py`` pins this across chunk
sizes against the golden suite).

The module also provides :func:`check_coherence_invariants`, used by the
integration and property-based tests to assert protocol correctness after
(or during) a run:

* at most one node holds a subblock in M or E, and then no other node
  holds any valid copy;
* at most one node holds a subblock in O;
* L1 contents are included in the L2 (and writable L1 lines are backed by
  an L2 subblock in M);
* write-buffered copies do not coexist with another cache's M/E copy.
"""

from __future__ import annotations

import base64
import itertools
import zlib
from array import array
from collections.abc import Iterable, Iterator
from typing import Protocol

from repro.coherence.bus import Bus, BusOp, BusStatsCounter
from repro.coherence.config import SystemConfig
from repro.coherence.metrics import BusStats, NodeStats, SimResult
from repro.coherence.node import CacheNode
from repro.core.stats import NodeEventStream
from repro.coherence.states import MOESI
from repro.errors import CoherenceError, TraceError

#: Default accesses per streaming chunk.  Peak event-shard memory is
#: proportional to this (a few events per access at most), independent of
#: trace length.
DEFAULT_CHUNK_SIZE = 65_536

#: Packed events per persisted trace segment (2 MiB of raw ``array('q')``
#: bytes).  Segment boundaries are cut at exact event counts, never at
#: chunk boundaries, so the bytes of a recorded trace are independent of
#: the simulation chunk size.  Changing this constant only changes how a
#: *new* recording is sliced — old recordings replay through their own
#: manifests unchanged.
TRACE_SEGMENT_EVENTS = 1 << 18


def iter_batches(
    source: Iterable[tuple[int, int, bool]],
    batch_size: int,
    limit: int | None = None,
) -> Iterator[list[tuple[int, int, bool]]]:
    """Yield bounded in-order batches of accesses from ``source``.

    Sources exposing the *batch protocol* — a ``take(count)`` method
    returning up to ``count`` items, like
    :class:`repro.traces.synth.MixStream` — are drained through it, so a
    whole batch materialises in one call instead of three generator
    frames per access.  Anything else falls back to ``itertools.islice``
    (which still drives plain iterators from C).  With ``limit``, at
    most that many accesses are consumed in total; a short batch always
    means the source (or the limit) is exhausted.
    """
    take = getattr(source, "take", None)
    if take is None:
        iterator = iter(source)
        if limit is not None:
            iterator = itertools.islice(iterator, limit)
        while True:
            batch = list(itertools.islice(iterator, batch_size))
            if not batch:
                return
            yield batch
            if len(batch) < batch_size:
                return
    else:
        remaining = limit
        while True:
            size = batch_size if remaining is None else min(batch_size, remaining)
            if size <= 0:
                return
            batch = take(size)
            if not batch:
                return
            if remaining is not None:
                remaining -= len(batch)
            yield batch
            if len(batch) < size:
                return


class ShardConsumer(Protocol):
    """Anything that can absorb per-chunk event shards from a live run."""

    def consume(self, shard: list[NodeEventStream]) -> None:
        """Receive one chunk's per-node event shards, in node order."""


class TraceSink:
    """Shard consumer that repacks a live run's events into fixed segments.

    Attached to :func:`simulate_streaming` alongside (or instead of) the
    filter banks, the sink accumulates each node's packed events in a
    byte buffer and hands off one *segment* — exactly
    ``segment_events`` events of raw native-order ``array('q')`` bytes —
    to the ``write_segment(node_id, index, raw_bytes)`` callable every
    time a node's buffer fills, keeping memory O(segment) for any trace
    length.  :meth:`finish` flushes the (possibly short) tail segments
    and returns the per-node segment counts for the trace manifest.

    Because segments are cut at exact per-node event counts, the bytes
    written are a pure function of the event streams: recording the same
    ``(workload, system, seed)`` at any simulation chunk size produces
    identical segments.  The sink is storage-agnostic (compression and
    store keys belong to :mod:`repro.analysis.store`), which keeps the
    coherence layer free of analysis imports.
    """

    _ITEMSIZE = 8  # bytes per packed event in an array('q')

    def __init__(
        self,
        n_cpus: int,
        write_segment,
        segment_events: int = TRACE_SEGMENT_EVENTS,
    ) -> None:
        if segment_events < 1:
            raise TraceError(
                f"segment_events must be >= 1, got {segment_events}"
            )
        self._write = write_segment
        self._segment_bytes = segment_events * self._ITEMSIZE
        self._buffers = [bytearray() for _ in range(n_cpus)]
        self._next_index = [0] * n_cpus
        #: Total events recorded per node (for the manifest).
        self.events_per_node = [0] * n_cpus
        #: CRC32 of each node's most recently written segment's raw
        #: bytes.  A resumed recording checks the last durable segment
        #: against this before trusting it (a truncated store row must
        #: send the resume back to an earlier watermark, not replay on
        #: top of garbage).
        self.last_segment_crc: list[int | None] = [None] * n_cpus

    def consume(self, shard: list[NodeEventStream]) -> None:
        segment_bytes = self._segment_bytes
        for node_id, stream in enumerate(shard):
            events = stream.events
            if not events:
                continue
            self.events_per_node[node_id] += len(events)
            buffer = self._buffers[node_id]
            buffer += events.tobytes()
            while len(buffer) >= segment_bytes:
                raw = bytes(buffer[:segment_bytes])
                self._write(node_id, self._next_index[node_id], raw)
                self._next_index[node_id] += 1
                self.last_segment_crc[node_id] = zlib.crc32(raw)
                del buffer[:segment_bytes]

    def finish(self) -> list[int]:
        """Flush tail segments; return each node's total segment count."""
        for node_id, buffer in enumerate(self._buffers):
            if buffer:
                self._write(node_id, self._next_index[node_id], bytes(buffer))
                self._next_index[node_id] += 1
                buffer.clear()
        return list(self._next_index)

    @staticmethod
    def decode_segment(raw: bytes) -> array:
        """Inverse of the bytes handed to ``write_segment``.

        Turns one segment of raw native-order packed-event bytes back
        into the ``array('q')`` the event streams produced.  Storage
        codecs (compression, cross-endian normalisation) live in
        :mod:`repro.analysis.store`; this helper is the raw-byte layer
        only, for consumers holding uncompressed segment bytes.
        """
        if len(raw) % TraceSink._ITEMSIZE:
            raise TraceError(
                f"segment byte length {len(raw)} is not a multiple of "
                f"the {TraceSink._ITEMSIZE}-byte packed event size"
            )
        events = array("q")
        events.frombytes(raw)
        return events

    def snapshot(self) -> dict:
        """Serialisable sink state: buffered tails plus segment watermarks.

        ``next_index`` is the per-node *durable watermark* — every
        segment below it has been handed to ``write_segment`` already —
        and the byte buffers carry whatever has not yet filled a
        segment.  A restored sink continues writing at exactly the next
        index with exactly the bytes an uninterrupted run would have
        buffered, so the recorded segments stay a pure function of the
        event streams.
        """
        return {
            "segment_bytes": self._segment_bytes,
            "buffers": [
                base64.b64encode(bytes(buffer)).decode("ascii")
                for buffer in self._buffers
            ],
            "next_index": list(self._next_index),
            "events_per_node": list(self.events_per_node),
            "last_segment_crc": list(self.last_segment_crc),
        }

    def restore(self, state: dict) -> None:
        """Adopt a snapshot (buffer contents, watermarks, checksums)."""
        if len(state["buffers"]) != len(self._buffers):
            raise TraceError(
                f"sink snapshot covers {len(state['buffers'])} node(s), "
                f"sink has {len(self._buffers)}"
            )
        if state["segment_bytes"] != self._segment_bytes:
            raise TraceError(
                f"sink snapshot cut segments at {state['segment_bytes']} "
                f"bytes, this sink cuts at {self._segment_bytes}"
            )
        self._buffers = [
            bytearray(base64.b64decode(encoded))
            for encoded in state["buffers"]
        ]
        self._next_index = list(state["next_index"])
        self.events_per_node = list(state["events_per_node"])
        self.last_segment_crc = list(state["last_segment_crc"])


class SMPSystem:
    """A bus-based symmetric multiprocessor."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.bus = Bus(config.n_cpus)
        self.nodes = [CacheNode(i, config) for i in range(config.n_cpus)]
        for node in self.nodes:
            node.broadcast = self._make_broadcast(node.node_id)
            node.on_writeback = self.bus.record_writeback
        self.accesses = 0
        #: Per-CPU bound ``local_access`` methods — the run loop indexes
        #: this tuple instead of resolving two attributes per access.
        self._handlers = tuple(node.local_access for node in self.nodes)
        #: For direct-mapped L1s the batch loop resolves read hits inline
        #: (no LRU order to maintain, so a dict probe fully decides the
        #: access); set-associative L1s always take ``local_access``.
        self._l1_maps = (
            tuple(node.l1._by_block for node in self.nodes)
            if config.l1.ways == 1
            else None
        )
        self._l1_shift = config.l1.block_offset_bits

    def _make_broadcast(self, requester: int):
        """Build the closure a node uses to put a transaction on the bus.

        The remote nodes' ``snoop`` bound methods and one reply buffer
        are captured per requester, so a transaction is a plain loop
        filling a preallocated list — no per-transaction comprehension,
        closure cells, or list allocation.  Reusing the buffer is safe
        because :meth:`Bus.record_transaction` folds the replies
        immediately and never retains the list.
        """
        snoops = tuple(
            node.snoop for node in self.nodes if node.node_id != requester
        )
        record = self.bus.record_transaction
        replies: list = [None] * len(snoops)

        def broadcast(op: BusOp, address: int):
            for i, snoop in enumerate(snoops):
                replies[i] = snoop(op, address)
            return record(op, replies)

        return broadcast

    # ------------------------------------------------------------------

    def access(self, cpu: int, address: int, is_write: bool) -> None:
        """Run one processor access to completion."""
        if not 0 <= cpu < self.config.n_cpus:
            raise TraceError(
                f"access for CPU {cpu} on a {self.config.n_cpus}-way system"
            )
        self.accesses += 1
        self.nodes[cpu].local_access(address, is_write)

    def run(
        self,
        accesses: Iterable[tuple[int, int, bool]],
        limit: int | None = None,
    ) -> None:
        """Consume an interleaved stream of ``(cpu, address, is_write)``.

        Batch-protocol sources (``take``-capable, e.g. ``MixStream``) are
        consumed in bounded batches; with ``limit`` at most that many
        accesses are taken from the stream (the warm-up prefix).
        """
        for batch in iter_batches(accesses, DEFAULT_CHUNK_SIZE, limit):
            self._run_batch(batch)

    def _run_batch(self, batch) -> None:
        """The per-access hot loop over one materialised batch.

        For direct-mapped L1s the 97-99% case — an L1 hit that needs no
        permission or dirty-bit transition — is resolved right here with
        one dict probe and two counter increments, mirroring the head of
        :meth:`CacheNode.local_access` exactly; everything else falls
        through to ``local_access``.
        """
        handlers = self._handlers
        n_cpus = len(handlers)
        l1_maps = self._l1_maps
        shift = self._l1_shift
        count = 0
        if l1_maps is not None:
            # Stats objects are only replaced between runs (by
            # begin_measurement), never inside a batch, so one snapshot
            # per batch is safe.
            stats_by_cpu = tuple(node.stats for node in self.nodes)
            for cpu, address, is_write in batch:
                if cpu < 0 or cpu >= n_cpus:
                    raise TraceError(
                        f"access for CPU {cpu} on a {n_cpus}-way system"
                    )
                count += 1
                frame1 = l1_maps[cpu].get(address >> shift)
                if frame1 is not None:
                    if not is_write:
                        stats = stats_by_cpu[cpu]
                        stats.l1_hits += 1
                        stats.local_reads += 1
                        continue
                    if frame1.dirty and frame1.writable:
                        stats = stats_by_cpu[cpu]
                        stats.l1_hits += 1
                        stats.local_writes += 1
                        continue
                handlers[cpu](address, is_write)
        else:
            for cpu, address, is_write in batch:
                if cpu < 0 or cpu >= n_cpus:
                    raise TraceError(
                        f"access for CPU {cpu} on a {n_cpus}-way system"
                    )
                count += 1
                handlers[cpu](address, is_write)
        self.accesses += count

    def snapshot(self) -> dict:
        """Serialisable logical state of the whole machine.

        Composes every node's snapshot with the bus counters and the
        measured-access counter.  Everything derived — the handler
        tuple, the direct-mapped L1 fast-path maps, the per-requester
        broadcast closures — is rebuilt by :meth:`restore` (or simply
        stays valid because the underlying dicts are restored in
        place).
        """
        return {
            "accesses": self.accesses,
            "nodes": [node.snapshot() for node in self.nodes],
            "bus": self.bus.snapshot(),
        }

    def restore(self, state: dict) -> None:
        """Adopt a snapshot taken from an identically configured system."""
        if len(state["nodes"]) != len(self.nodes):
            raise TraceError(
                f"snapshot covers {len(state['nodes'])} node(s), "
                f"system has {len(self.nodes)}"
            )
        for node, node_state in zip(self.nodes, state["nodes"]):
            node.restore(node_state)
        self.bus.restore(state["bus"])
        self.accesses = state["accesses"]
        # The L1 fast-path maps alias each node's ``_by_block`` dict,
        # which restores in place; rebuild anyway so a restore can never
        # depend on that aliasing subtlety.
        if self._l1_maps is not None:
            self._l1_maps = tuple(node.l1._by_block for node in self.nodes)

    def take_shard(self) -> list[NodeEventStream]:
        """Detach and return every node's pending events as one shard.

        Nodes continue recording into fresh, empty streams; the caller
        owns the returned shard.  Concatenating all shards taken during a
        run (per node, in order) reconstructs the exact event list a
        buffered run would have accumulated.
        """
        return [node.reset_event_stream() for node in self.nodes]

    def run_chunked(
        self,
        accesses: Iterable[tuple[int, int, bool]],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        limit: int | None = None,
    ) -> Iterator[list[NodeEventStream]]:
        """Consume ``accesses`` in bounded chunks, yielding event shards.

        Each yielded shard covers at most ``chunk_size`` accesses; event
        memory never exceeds one chunk's worth.  The access stream itself
        is consumed lazily (never materialised beyond one chunk); with
        ``limit``, at most that many accesses are consumed.
        """
        if chunk_size < 1:
            raise TraceError(f"chunk_size must be >= 1, got {chunk_size}")
        for batch in iter_batches(accesses, chunk_size, limit):
            self._run_batch(batch)
            yield self.take_shard()

    def mark_phase(self, index: int) -> None:
        """Append a PHASE marker to every node's event stream.

        Like the warm-up MARKER, the marker is emitted *between* chunks
        and therefore rides at the front of the next shard (or the
        residue), landing at the same position in the event sequence
        whatever the chunk size.  Replay statistics split at it; cache
        and filter state persist untouched.
        """
        for node in self.nodes:
            node.events.phase(index)

    def begin_measurement(self) -> None:
        """End the cache warm-up phase: zero statistics, keep all state.

        Cache, write-buffer, and filter-relevant state (the event streams'
        ALLOC/EVICT history) are preserved; only counters restart, so the
        reported rates reflect steady-state behaviour rather than the
        compulsory misses of a cold L2.
        """
        for node in self.nodes:
            node.stats = NodeStats()
            node.events.marker()
        self.bus.stats = BusStatsCounter()
        self.bus.stats.ensure_cpus(self.config.n_cpus)
        self.accesses = 0

    def finish(self) -> None:
        """Drain all write buffers (call once, at end of trace)."""
        for node in self.nodes:
            node.drain_write_buffer()

    def result(self, workload: str = "", include_events: bool = True) -> SimResult:
        """Package statistics and event streams for analysis.

        With ``include_events=False`` the result carries metrics only
        (``event_streams == []``) — the shape streamed runs produce, since
        their events were handed to shard consumers and discarded.
        """
        bus_counts = self.bus.stats
        bus = BusStats(
            reads=bus_counts.transactions[BusOp.READ],
            read_exclusives=bus_counts.transactions[BusOp.READ_X],
            upgrades=bus_counts.transactions[BusOp.UPGRADE],
            writebacks=bus_counts.writebacks,
            remote_hit_histogram=tuple(bus_counts.remote_hit_histogram),
        )
        return SimResult(
            workload=workload,
            n_cpus=self.config.n_cpus,
            node_stats=[node.stats for node in self.nodes],
            bus=bus,
            event_streams=(
                [node.events for node in self.nodes] if include_events else []
            ),
            accesses=self.accesses,
        )


def _boundary_schedule(
    warmup: int, phase_marks
) -> list[tuple[int, int]]:
    """The ordered stop positions of a run: warm-up end plus phase marks.

    Each entry is ``(absolute_position, action)`` where action ``-1``
    means ``begin_measurement`` and any other value is the phase index
    to mark.  Sorting by ``(position, action)`` puts the warm-up MARKER
    before a PHASE marker landing at the same access — phase 0 of a
    suite starts exactly where measurement does.
    """
    schedule: list[tuple[int, int]] = []
    if warmup > 0:
        schedule.append((warmup, -1))
    for index, position in enumerate(phase_marks):
        schedule.append((int(position), index))
    schedule.sort()
    return schedule


def simulate(
    config: SystemConfig,
    accesses: Iterable[tuple[int, int, bool]],
    workload: str = "",
    warmup: int = 0,
    phase_marks=(),
) -> SimResult:
    """Build a system, run ``accesses``, drain, and return the result.

    The first ``warmup`` accesses warm the caches; statistics (node, bus,
    and filter-replay coverage) cover only the remainder.  Each entry of
    ``phase_marks`` is an absolute access position (warm-up included) at
    which a PHASE marker is emitted into every node's event stream —
    phase index = entry index — so phase-structured suites record their
    boundaries into the same streams buffered replay consumes.
    """
    system = SMPSystem(config)
    if warmup <= 0 and not phase_marks:
        system.run(accesses)
    else:
        iterator = iter(accesses)
        position = 0
        for stop, action in _boundary_schedule(warmup, phase_marks):
            if stop > position:
                system.run(iterator, limit=stop - position)
                position = stop
            if action < 0:
                system.begin_measurement()
            else:
                system.mark_phase(action)
        system.run(iterator)
    system.finish()
    return system.result(workload)


def simulate_streaming(
    config: SystemConfig,
    accesses: Iterable[tuple[int, int, bool]],
    workload: str = "",
    warmup: int = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    sinks: Iterable[ShardConsumer] = (),
    phase_marks=(),
    warmup_sinks: Iterable[ShardConsumer] = (),
    measurement_sinks: Iterable[ShardConsumer] = (),
    on_measurement=None,
) -> SimResult:
    """Single-pass, bounded-memory sibling of :func:`simulate`.

    The run is identical access for access — same warm-up handling, same
    statistics, same ``phase_marks`` semantics — but instead of
    accumulating every node's event stream, events are cut into shards
    of at most ``chunk_size`` accesses and pushed to ``sinks``
    (typically one :class:`~repro.core.stats.StreamingFilterBank` per
    filter configuration) as the simulation advances.  Peak memory is
    O(chunk_size), independent of trace length; the returned result is
    metrics-only (``event_streams == []``) with node, bus, and access
    counters equal to what :func:`simulate` would report.

    ``sinks`` see every shard.  ``warmup_sinks`` stop receiving shards at
    ``begin_measurement`` and ``measurement_sinks`` start there (the
    warm-up MARKER rides at the front of the first *measurement* shard,
    so a measurement-only consumer still observes the statistics reset
    exactly where a full-stream consumer does); ``on_measurement`` is
    called with the system at the same boundary, after warm-up sinks are
    detached and before any measurement shard is cut.  Together these
    are the measured-region-only recording hooks: warm-up sinks carry
    the filter banks whose warmed state gets snapshotted by the
    callback, measurement sinks carry the trace sink that records only
    post-marker events.
    """
    system = SMPSystem(config)
    always = list(sinks)
    warmup_sinks = list(warmup_sinks)
    measurement_sinks = list(measurement_sinks)
    if warmup <= 0 and (warmup_sinks or measurement_sinks or on_measurement):
        raise TraceError(
            "measurement-boundary hooks require a positive warm-up"
        )
    active = always + warmup_sinks
    iterator = iter(accesses)
    position = 0
    for stop, action in _boundary_schedule(warmup, phase_marks):
        if stop > position:
            for shard in system.run_chunked(
                iterator, chunk_size, limit=stop - position
            ):
                for sink in active:
                    sink.consume(shard)
            position = stop
        if action < 0:
            system.begin_measurement()
            active = always + measurement_sinks
            if on_measurement is not None:
                on_measurement(system)
        else:
            system.mark_phase(action)
    for shard in system.run_chunked(iterator, chunk_size):
        for sink in active:
            sink.consume(shard)
    # A warm-up or PHASE marker (and nothing else) can remain pending
    # when the region after it is empty or the stream ended exactly at a
    # boundary.
    residue = system.take_shard()
    if any(stream.events for stream in residue):
        for sink in active:
            sink.consume(residue)
    system.finish()
    return system.result(workload, include_events=False)


def check_coherence_invariants(system: SMPSystem) -> None:
    """Assert global MOESI and inclusion invariants; raise on violation."""
    per_subblock: dict[tuple[int, int], list[tuple[int, MOESI]]] = {}
    for node in system.nodes:
        for ways in node.l2._sets:
            for frame in ways:
                if frame is None:
                    continue
                for sub, state in enumerate(frame.states):
                    if state is not MOESI.I:
                        key = (frame.block, sub)
                        per_subblock.setdefault(key, []).append(
                            (node.node_id, state)
                        )
        _check_inclusion(node)

    wb_copies: dict[tuple[int, int], list[int]] = {}
    for node in system.nodes:
        for block in node.wb.blocks():
            entry = node.wb.probe(block)
            assert entry is not None
            for sub, _state in entry.dirty_subblocks:
                wb_copies.setdefault((block, sub), []).append(node.node_id)

    for key, holders in per_subblock.items():
        states = [state for _node, state in holders]
        exclusive = [s for s in states if s in (MOESI.M, MOESI.E)]
        owners = [s for s in states if s is MOESI.O]
        if exclusive and len(states) > 1:
            raise CoherenceError(
                f"subblock {key} held exclusively ({exclusive[0].name}) "
                f"while {len(states)} caches hold copies: {holders}"
            )
        if len(owners) > 1:
            raise CoherenceError(f"subblock {key} has {len(owners)} owners")
        if exclusive and key in wb_copies:
            raise CoherenceError(
                f"subblock {key} is M/E in a cache but also write-buffered "
                f"on nodes {wb_copies[key]}"
            )


def _check_inclusion(node: CacheNode) -> None:
    """Every L1 block must be backed by a valid L2 subblock on its node."""
    ratio_bits = (
        node.l2.geometry.config.block_offset_bits
        - node.l1.geometry.config.block_offset_bits
    )
    for l1_block in node.l1.resident_blocks():
        l2_block = l1_block >> ratio_bits
        sub = l1_block & ((1 << ratio_bits) - 1)
        frame = node.l2.find(l2_block, touch=False)
        if frame is None or not frame.states[sub].valid:
            raise CoherenceError(
                f"inclusion violated on node {node.node_id}: L1 block "
                f"{l1_block:#x} lacks a valid L2 backing subblock"
            )
        l1_frame = node.l1.find(l1_block, touch=False)
        assert l1_frame is not None
        if l1_frame.writable and frame.states[sub] not in (MOESI.M, MOESI.E):
            raise CoherenceError(
                f"writable L1 block {l1_block:#x} on node {node.node_id} "
                f"backed by L2 state {frame.states[sub].name}"
            )
        if l1_frame.dirty and frame.states[sub] is not MOESI.M:
            raise CoherenceError(
                f"dirty L1 block {l1_block:#x} on node {node.node_id} "
                f"backed by L2 state {frame.states[sub].name}"
            )
