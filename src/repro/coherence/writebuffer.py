"""The write-back buffer between the L2 and the bus.

Dirty blocks displaced from the L2 wait here until the bus writes them to
memory.  Two properties matter for the paper's evaluation:

* every bus snoop probes the WB *in addition to* any filtered/unfiltered
  L2 tag probe — a JETTY never filters WB lookups (paper §2, Figure 1b),
  so WB probe energy is charged on every snoop;
* a block sitting in the WB can still service snoops (it is the only
  up-to-date copy), and a local re-reference can reclaim it before the
  writeback drains.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.coherence.states import MOESI
from repro.errors import ConfigurationError


@dataclass
class WBEntry:
    """A dirty block awaiting writeback.

    ``dirty_subblocks`` pairs each dirty subblock index with the MOESI
    state it held at eviction (M or O), so a local reclaim can restore the
    state faithfully.
    """

    block: int
    dirty_subblocks: tuple[tuple[int, MOESI], ...]


class WriteBuffer:
    """FIFO write-back buffer with CAM-style lookup."""

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ConfigurationError(f"write buffer needs >= 1 entry, got {entries}")
        self.capacity = entries
        self._entries: OrderedDict[int, WBEntry] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def push(self, block: int, dirty_subblocks: tuple[tuple[int, MOESI], ...]) -> None:
        """Queue a displaced dirty block.  The caller drains first if full."""
        if self.full:
            raise ConfigurationError("write buffer overflow; drain before push")
        if block in self._entries:
            # Re-eviction of a block pushed earlier: the newer states win.
            previous = self._entries.pop(block)
            merged = dict(previous.dirty_subblocks)
            merged.update(dict(dirty_subblocks))
            dirty_subblocks = tuple(sorted(merged.items()))
        self._entries[block] = WBEntry(block, dirty_subblocks)

    def probe(self, block: int) -> WBEntry | None:
        """CAM lookup used by snoops and local reclaim (no reordering)."""
        return self._entries.get(block)

    def remove(self, block: int) -> WBEntry | None:
        """Take a block out (local reclaim or invalidating snoop)."""
        return self._entries.pop(block, None)

    def drain_oldest(self) -> WBEntry:
        """Pop the oldest entry for its memory writeback."""
        if not self._entries:
            raise ConfigurationError("drain on empty write buffer")
        _block, entry = self._entries.popitem(last=False)
        return entry

    def drain_all(self) -> list[WBEntry]:
        """Flush everything (end of simulation)."""
        drained = list(self._entries.values())
        self._entries.clear()
        return drained

    def blocks(self) -> tuple[int, ...]:
        """Currently buffered block numbers (tests/inspection)."""
        return tuple(self._entries.keys())

    def snapshot(self) -> dict:
        """Serialisable logical state: entries in FIFO order.

        Each entry is ``[block, [[sub, state_name], ...]]`` — the FIFO
        position is the list position, so drain order survives a
        round trip exactly.
        """
        return {
            "entries": [
                [entry.block,
                 [[sub, state.name] for sub, state in entry.dirty_subblocks]]
                for entry in self._entries.values()
            ]
        }

    def restore(self, state: dict) -> None:
        """Adopt a snapshot, rebuilding ``_entries`` **in place**.

        :class:`~repro.coherence.node.CacheNode` caches a bound
        ``_entries.get`` for the snoop CAM probe, so the OrderedDict
        object itself must survive the restore.
        """
        if len(state["entries"]) > self.capacity:
            raise ConfigurationError(
                f"write-buffer snapshot holds {len(state['entries'])} "
                f"entries, capacity is {self.capacity}"
            )
        self._entries.clear()
        for block, dirty in state["entries"]:
            self._entries[block] = WBEntry(
                block, tuple((sub, MOESI[name]) for sub, name in dirty)
            )
