"""Shared-bus transaction types and per-transaction snoop bookkeeping.

The bus model is functional: a transaction is broadcast to every other
node, each snoops synchronously, and the aggregated response (was any copy
found? did an owner supply data?) returns to the requester.  No timing is
modelled — JETTY does not change protocol behaviour or performance
(paper §2.2), so cycle accounting would not affect any reproduced result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class BusOp(Enum):
    """Snoopable bus transaction kinds of the write-invalidate protocol."""

    #: Read miss: requester wants a shared copy.
    READ = "BusRd"
    #: Write miss: requester wants an exclusive copy; others invalidate.
    READ_X = "BusRdX"
    #: Write hit on a shared subblock: invalidate other copies, no data.
    UPGRADE = "BusUpgr"


@dataclass(slots=True)
class SnoopReply:
    """One node's answer to a snoop (slotted: allocated once per snoop)."""

    #: The snooped subblock was valid in this node's hierarchy (L2 or WB).
    hit: bool = False
    #: This node owned the dirty copy and supplies the data.
    supplied: bool = False


@dataclass(slots=True)
class BusResult:
    """Aggregated outcome of one bus transaction."""

    op: BusOp
    #: Number of other nodes that held a valid copy of the subblock.
    remote_hits: int = 0
    #: True when some owner cache (or WB) supplied the data.
    data_supplied: bool = False


@dataclass
class BusStatsCounter:
    """Raw transaction counts the bus accumulates."""

    transactions: dict[BusOp, int] = field(
        default_factory=lambda: {op: 0 for op in BusOp}
    )
    writebacks: int = 0
    #: Histogram of remote-hit counts per snoopable transaction, indexed by
    #: the number of other caches holding a copy (0 .. n_cpus-1).
    remote_hit_histogram: list[int] = field(default_factory=list)

    def ensure_cpus(self, n_cpus: int) -> None:
        if not self.remote_hit_histogram:
            self.remote_hit_histogram = [0] * n_cpus

    @property
    def snoopable(self) -> int:
        return sum(self.transactions.values())


class Bus:
    """The shared snoopy bus connecting all nodes and memory.

    The bus does not know about nodes directly; :class:`repro.coherence.smp.
    SMPSystem` wires broadcasting.  This class owns transaction statistics
    so they are counted in exactly one place.
    """

    def __init__(self, n_cpus: int) -> None:
        self.n_cpus = n_cpus
        self.stats = BusStatsCounter()
        self.stats.ensure_cpus(n_cpus)

    def record_transaction(self, op: BusOp, replies: list[SnoopReply]) -> BusResult:
        """Fold snoop replies into a result and update statistics.

        The replies list may be a caller-owned reusable buffer; it is
        folded immediately and never retained.  The fold is a plain loop
        (no generator expressions) — this runs once per bus transaction.
        """
        remote_hits = 0
        supplied = False
        for reply in replies:
            if reply.hit:
                remote_hits += 1
            if reply.supplied:
                supplied = True
        stats = self.stats
        stats.transactions[op] += 1
        stats.remote_hit_histogram[remote_hits] += 1
        return BusResult(op=op, remote_hits=remote_hits, data_supplied=supplied)

    def record_writeback(self) -> None:
        self.stats.writebacks += 1

    def snapshot(self) -> dict:
        """Serialisable transaction counters (the bus has no other state)."""
        stats = self.stats
        return {
            "transactions": {op.name: n for op, n in stats.transactions.items()},
            "writebacks": stats.writebacks,
            "remote_hit_histogram": list(stats.remote_hit_histogram),
        }

    def restore(self, state: dict) -> None:
        """Adopt snapshotted counters (a fresh counter object is fine:
        :meth:`record_transaction` reads ``self.stats`` dynamically)."""
        counter = BusStatsCounter(
            transactions={
                op: state["transactions"][op.name] for op in BusOp
            },
            writebacks=state["writebacks"],
            remote_hit_histogram=list(state["remote_hit_histogram"]),
        )
        self.stats = counter
