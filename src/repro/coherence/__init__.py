"""Snoopy bus-based SMP coherence substrate.

This package implements the system the paper evaluates JETTY on: a 4-way
(or 8-way) symmetric multiprocessor with per-processor two-level inclusive
cache hierarchies, a write-back buffer, a shared snoopy bus, and a MOESI
write-invalidate protocol maintained at 32-byte subblock granularity
(paper §4.1, SUN SPARC-like memory system).

The simulator is trace-driven and functional: accesses complete atomically
in interleaved order, which is sufficient because JETTY affects energy but
not timing or protocol behaviour (paper §2.2).  While simulating, each
node records the event stream its JETTY would observe; filters are then
evaluated by replay (see :mod:`repro.core.stats`).
"""

from repro.coherence.bus import Bus, BusOp
from repro.coherence.cache import CacheGeometry, SetAssocCache
from repro.coherence.config import (
    PAPER_SYSTEM,
    SCALED_SYSTEM,
    CacheConfig,
    SystemConfig,
)
from repro.coherence.metrics import BusStats, NodeStats, SimResult
from repro.coherence.node import CacheNode
from repro.coherence.smp import SMPSystem, simulate
from repro.coherence.states import MOESI
from repro.coherence.writebuffer import WriteBuffer

__all__ = [
    "Bus",
    "BusOp",
    "BusStats",
    "CacheConfig",
    "CacheGeometry",
    "CacheNode",
    "MOESI",
    "NodeStats",
    "PAPER_SYSTEM",
    "SCALED_SYSTEM",
    "SMPSystem",
    "SetAssocCache",
    "SimResult",
    "SystemConfig",
    "WriteBuffer",
    "simulate",
]
