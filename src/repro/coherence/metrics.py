"""Statistics collected by the coherence simulator.

:class:`NodeStats` counts every access type the energy model prices;
:class:`SimResult` bundles per-node stats, bus stats, and the recorded
JETTY event streams for one simulated workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stats import NodeEventStream


@dataclass
class NodeStats:
    """Per-node access counters.

    Naming convention: ``l2_local_*`` are accesses initiated by the local
    processor; ``snoop_*`` are bus-induced.  "Hits" at L2 are subblock
    hits (the requested coherence unit was valid); ``snoop_block_present``
    additionally counts snoops whose block *tag* matched regardless of
    subblock state — the quantity JETTY safety is defined against.
    """

    # Processor-side
    local_reads: int = 0
    local_writes: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l1_writebacks: int = 0

    # L2, locally initiated
    l2_local_accesses: int = 0
    l2_local_hits: int = 0
    l2_local_misses: int = 0
    l2_local_tag_probes: int = 0
    l2_local_tag_updates: int = 0
    l2_local_data_reads: int = 0
    l2_local_data_writes: int = 0
    l2_block_allocs: int = 0
    l2_block_evictions: int = 0
    l2_dirty_evictions: int = 0
    upgrades_issued: int = 0
    wb_reclaims: int = 0

    # L2, snoop-induced
    snoops_observed: int = 0
    snoop_tag_probes: int = 0
    snoop_hits: int = 0
    snoop_misses: int = 0
    snoop_block_present: int = 0
    snoop_state_updates: int = 0
    snoop_data_supplies: int = 0
    l1_snoop_probes: int = 0

    # Write buffer
    wb_probes: int = 0
    wb_hits: int = 0
    wb_pushes: int = 0
    wb_drains: int = 0

    @property
    def local_accesses(self) -> int:
        return self.local_reads + self.local_writes

    @property
    def l1_hit_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_hits / total if total else 0.0

    @property
    def l2_local_hit_rate(self) -> float:
        total = self.l2_local_hits + self.l2_local_misses
        return self.l2_local_hits / total if total else 0.0

    @property
    def l2_total_accesses(self) -> int:
        """All L2 tag accesses: local plus snoop-induced."""
        return self.l2_local_accesses + self.snoop_tag_probes

    def merged_with(self, other: "NodeStats") -> "NodeStats":
        """Elementwise sum (aggregate over nodes)."""
        merged = NodeStats()
        for name in vars(self):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        return merged


@dataclass
class BusStats:
    """Bus-level summary extracted from the Bus counter object."""

    reads: int = 0
    read_exclusives: int = 0
    upgrades: int = 0
    writebacks: int = 0
    remote_hit_histogram: tuple[int, ...] = ()

    @property
    def snoopable(self) -> int:
        return self.reads + self.read_exclusives + self.upgrades

    def remote_hit_fractions(self) -> tuple[float, ...]:
        """Histogram normalised over snoopable transactions (Table 3)."""
        total = self.snoopable
        if total == 0:
            return tuple(0.0 for _ in self.remote_hit_histogram)
        return tuple(count / total for count in self.remote_hit_histogram)


@dataclass
class SimResult:
    """Everything one simulation run produces."""

    workload: str
    n_cpus: int
    node_stats: list[NodeStats]
    bus: BusStats
    event_streams: list[NodeEventStream]
    accesses: int = 0

    @property
    def aggregate(self) -> NodeStats:
        """Node stats summed over all CPUs (the paper reports aggregates)."""
        total = NodeStats()
        for stats in self.node_stats:
            total = total.merged_with(stats)
        return total

    @property
    def snoop_miss_fraction_of_snoops(self) -> float:
        """Table 3: snoop-induced tag accesses that miss / snoop accesses."""
        agg = self.aggregate
        if agg.snoop_tag_probes == 0:
            return 0.0
        return agg.snoop_misses / agg.snoop_tag_probes

    @property
    def snoop_miss_fraction_of_all(self) -> float:
        """Table 3: snoop-induced tag misses / all L2 tag accesses."""
        agg = self.aggregate
        if agg.l2_total_accesses == 0:
            return 0.0
        return agg.snoop_misses / agg.l2_total_accesses
