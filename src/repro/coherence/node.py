"""One SMP processor node: L1 + L2 + write buffer, and its JETTY viewpoint.

The node implements both sides of the protocol:

* :meth:`CacheNode.local_access` — the processor-side path: L1 lookup,
  L2 lookup, bus transaction on a miss or on a write to a shared subblock,
  fills, replacements, write-buffer reclaim, and L1 inclusion maintenance.
* :meth:`CacheNode.snoop` — the bus-side path: the write-buffer CAM probe,
  the L2 tag probe with MOESI response, L1 invalidation/downgrade when the
  inclusion hints say the L1 may hold a copy.

While snooping, the node records the event stream a JETTY at its bus
interface would observe (snoops with ground-truth outcome, block
allocations and evictions) as packed integers (see
:mod:`repro.core.stats` for the bit layout).  The simulation itself
always performs the tag probe — a JETTY changes energy, never behaviour —
and filters are applied afterwards by replaying the stream
(:func:`repro.core.stats.replay_events`).

Hot-path notes: :meth:`local_access` and :meth:`snoop` run once per
access and once per bus transaction per remote node respectively, so
both inline their address arithmetic against shift/mask integers
precomputed in ``__init__`` (no per-access geometry method calls), the
L1-hit fast path returns before any L2 bookkeeping is touched, and
events append one precomputed packed integer through a cached
``array.append`` bound method (``_emit``).

Modelling notes (kept deliberately explicit):

* L1 coherence permission is a ``writable`` bit granted by the L2 (M/E).
  A store that hits a writable L1 line dirties it; the model mirrors the
  M-state into the L2 immediately (hardware defers this until the L1
  writeback, but mirrors it logically via the inclusion bits) so snoop
  responses are always computed against up-to-date state.  The mirror is
  free: no L2 access is counted for it.
* The write buffer stores evicted dirty subblocks with their states, so a
  local reclaim restores O as O (not M) and cannot manufacture exclusivity.
"""

from __future__ import annotations

from repro.coherence.bus import BusOp, BusResult, SnoopReply
from repro.coherence.cache import Frame, L1Cache, SetAssocCache
from repro.coherence.config import SystemConfig
from repro.coherence.metrics import NodeStats
from repro.coherence.states import MOESI
from repro.coherence.writebuffer import WriteBuffer
from repro.core.stats import ALLOC, EVICT, BLOCK_SHIFT, FLAG_SHIFT, NodeEventStream
from repro.errors import CoherenceError
from typing import Callable

Broadcast = Callable[[BusOp, int], BusResult]

#: Hot-path aliases: identity checks against these beat the MOESI
#: property descriptors (a Python call per ``state.valid``/``.writable``).
_I = MOESI.I
_M = MOESI.M
_E = MOESI.E

#: BusRd downgrade table (M supplies and becomes Owned, E demotes to S).
_READ_DOWNGRADE = {
    MOESI.M: MOESI.O,
    MOESI.O: MOESI.O,
    MOESI.E: MOESI.S,
    MOESI.S: MOESI.S,
}


class CacheNode:
    """A processor node on the snoopy bus."""

    def __init__(self, node_id: int, config: SystemConfig) -> None:
        self.node_id = node_id
        self.config = config
        self.l1 = L1Cache(config.l1)
        self.l2 = SetAssocCache(config.l2)
        self.wb = WriteBuffer(config.wb_entries)
        self.stats = NodeStats()
        self.events = NodeEventStream(node_id)
        #: Cached ``events.events.append`` (refreshed when the stream is
        #: detached as a shard) — the one-instruction event emit path.
        self._emit = self.events.events.append
        #: Set by the SMPSystem: callable that broadcasts a transaction to
        #: all other nodes and returns the aggregated bus result.
        self.broadcast: Broadcast | None = None
        #: Called on each memory writeback (bus statistics).
        self.on_writeback: Callable[[], None] | None = None

        # Precomputed address arithmetic (the geometry objects stay the
        # source of truth; these mirror them as plain ints for the two
        # per-access/per-snoop hot paths).
        self._l1_shift = config.l1.block_offset_bits
        self._l2_shift = config.l2.block_offset_bits
        if config.l2.subblocked:
            self._l2_sub_shift = config.l2.subblock_offset_bits
            self._l2_sub_mask = (
                1 << (config.l2.block_offset_bits - config.l2.subblock_offset_bits)
            ) - 1
        else:
            self._l2_sub_shift = 0
            self._l2_sub_mask = 0
        self._l1_find = self.l1.find
        #: ``find(block, touch=False)`` is exactly a flat-index lookup,
        #: so the snoop/mirror paths go straight to the dicts.
        self._l2_get = self.l2._by_block.get
        self._wb_get = self.wb._entries.get
        #: Reused per-node snoop reply: a node contributes at most one
        #: reply per transaction and the bus folds the buffer before the
        #: next one starts, so no allocation per snoop is needed.
        self._reply = SnoopReply()

    def snapshot(self) -> dict:
        """Serialisable logical state of the whole node.

        Covers the statistics counters, both cache levels, the write
        buffer, and any *pending* (not yet sharded) events.  Derived
        state — the precomputed shift/mask ints, the cached bound
        methods, the reusable snoop reply — is reconstruction-only and
        never serialised.
        """
        return {
            "stats": vars(self.stats).copy(),
            "l1": self.l1.snapshot(),
            "l2": self.l2.snapshot(),
            "wb": self.wb.snapshot(),
            "events": list(self.events.events),
        }

    def restore(self, state: dict) -> None:
        """Adopt a snapshot and rebuild every piece of derived state.

        The caches and write buffer restore their flat indexes in place
        (the bound ``_l2_get``/``_wb_get`` fast paths alias those
        dicts); the pending event stream is rebuilt fresh, so the cached
        ``_emit`` append must be re-bound afterwards.
        """
        self.stats = NodeStats(**state["stats"])
        self.l1.restore(state["l1"])
        self.l2.restore(state["l2"])
        self.wb.restore(state["wb"])
        self.events = NodeEventStream(self.node_id, state["events"])
        self._emit = self.events.events.append

    def reset_event_stream(self) -> NodeEventStream:
        """Detach the current event stream; record into a fresh one.

        Returns the detached stream (one shard).  Refreshes the cached
        append used by the hot paths.
        """
        detached = self.events
        self.events = NodeEventStream(self.node_id)
        self._emit = self.events.events.append
        return detached

    # ==================================================================
    # Processor side
    # ==================================================================

    def local_access(self, address: int, is_write: bool) -> None:
        """Perform one load or store issued by the local processor."""
        stats = self.stats
        frame1 = self._l1_find(address >> self._l1_shift)
        if frame1 is not None and (not is_write or frame1.writable):
            # L1 hit — the 97-99% case: no geometry beyond the block
            # shift, no events, no L2 interaction (except the one-off
            # silent E->M mirror on the first store to a clean line).
            stats.l1_hits += 1
            if is_write:
                stats.local_writes += 1
                if not frame1.dirty:
                    frame1.dirty = True
                    self._mirror_l1_write(address)
            else:
                stats.local_reads += 1
            return

        if is_write:
            stats.local_writes += 1
        else:
            stats.local_reads += 1
        stats.l1_misses += 1
        self._access_l2(address, is_write)

    def _access_l2(self, address: int, is_write: bool) -> None:
        """Service an L1 miss (or write-permission miss) at the L2."""
        stats = self.stats
        l2_block = address >> self._l2_shift
        sub = (address >> self._l2_sub_shift) & self._l2_sub_mask

        stats.l2_local_accesses += 1
        stats.l2_local_tag_probes += 1

        frame = self.l2.find(l2_block, touch=True)
        if frame is None:
            frame = self._handle_tag_miss(l2_block)
        self._service_subblock(frame, address, sub, is_write)

    def _handle_tag_miss(self, l2_block: int) -> Frame:
        """Allocate an L2 frame, reclaiming from the WB when possible."""
        stats = self.stats
        wb_entry = self.wb.remove(l2_block)

        frame, evicted = self.l2.allocate(l2_block)
        stats.l2_block_allocs += 1
        if evicted is not None:
            self._retire_victim(evicted)
        self._emit((l2_block << BLOCK_SHIFT) | ALLOC)

        if wb_entry is not None:
            # Reclaim the dirty subblocks with their original states so an
            # Owned copy is not silently promoted to Modified.
            stats.wb_reclaims += 1
            for sub_index, state in wb_entry.dirty_subblocks:
                frame.states[sub_index] = state
        return frame

    def _retire_victim(self, evicted) -> None:
        """Push a displaced block towards memory and keep L1 inclusion."""
        stats = self.stats
        stats.l2_block_evictions += 1
        self._emit((evicted.block << BLOCK_SHIFT) | EVICT)

        # Inclusion: drop every L1 copy of the victim's subblocks.  Dirty
        # L1 data is newer than the L2 copy; pulling it back is an L1
        # writeback that merges into the outgoing block.
        for sub_index in evicted.l1_subblocks:
            l1_block = self._l1_block_of(evicted.block, sub_index)
            dropped = self.l1.invalidate(l1_block)
            if dropped is not None and dropped.dirty:
                stats.l1_writebacks += 1

        if evicted.dirty:
            stats.l2_dirty_evictions += 1
            if self.wb.full:
                self._drain_one()
            self.wb.push(evicted.block, evicted.dirty_subblocks)
            stats.wb_pushes += 1

    def _service_subblock(
        self, frame: Frame, address: int, sub: int, is_write: bool
    ) -> None:
        """Complete the access now that a frame for the block exists."""
        stats = self.stats
        state = frame.states[sub]

        if state is not _I and (
            not is_write or state is _M or state is _E
        ):
            stats.l2_local_hits += 1
            stats.l2_local_data_reads += 1
            if is_write:
                frame.states[sub] = MOESI.M
            self._fill_l1(frame, address, sub, is_write)
            return

        if state is not _I and is_write:
            # Write hit on a shared subblock (S or O): bus upgrade.
            stats.l2_local_hits += 1
            stats.upgrades_issued += 1
            self._broadcast(BusOp.UPGRADE, address)
            frame.states[sub] = MOESI.M
            stats.l2_local_tag_updates += 1
            stats.l2_local_data_reads += 1
            self._fill_l1(frame, address, sub, is_write)
            return

        # Subblock miss (tag may or may not have just been allocated).
        stats.l2_local_misses += 1
        op = BusOp.READ_X if is_write else BusOp.READ
        result = self._broadcast(op, address)
        if is_write:
            frame.states[sub] = MOESI.M
        elif result.remote_hits > 0:
            frame.states[sub] = MOESI.S
        else:
            frame.states[sub] = MOESI.E
        stats.l2_local_tag_updates += 1
        stats.l2_local_data_writes += 1
        self._fill_l1(frame, address, sub, is_write)

    def _fill_l1(self, frame: Frame, address: int, sub: int, is_write: bool) -> None:
        """Install the serviced subblock into the L1 and track inclusion."""
        l1_block = address >> self._l1_shift
        state = frame.states[sub]
        displaced = self.l1.fill(l1_block, state is _M or state is _E)
        frame.in_l1[sub] = True
        if is_write:
            installed = self.l1.find(l1_block, touch=False)
            assert installed is not None
            installed.dirty = True

        if displaced is not None:
            self._handle_l1_displacement(displaced)

    def _handle_l1_displacement(self, displaced) -> None:
        """An L1 fill displaced another block: write back and un-hint."""
        stats = self.stats
        address = displaced.block << self._l1_shift
        l2_block = address >> self._l2_shift
        sub = (address >> self._l2_sub_shift) & self._l2_sub_mask
        frame = self._l2_get(l2_block)
        if frame is None:
            raise CoherenceError(
                f"L1 inclusion violated on node {self.node_id}: displaced L1 "
                f"block {displaced.block:#x} has no L2 frame"
            )
        frame.in_l1[sub] = False
        if displaced.dirty:
            stats.l1_writebacks += 1
            stats.l2_local_data_writes += 1
            # The mirror already holds M for dirty L1 lines.
            if frame.states[sub] is not MOESI.M:
                raise CoherenceError(
                    f"dirty L1 block {displaced.block:#x} on node "
                    f"{self.node_id} backed by L2 state {frame.states[sub].name}"
                )

    def _mirror_l1_write(self, address: int) -> None:
        """Reflect a silent E->M upgrade of a writable L1 line into the L2."""
        l2_block = address >> self._l2_shift
        sub = (address >> self._l2_sub_shift) & self._l2_sub_mask
        frame = self._l2_get(l2_block)
        if frame is None or frame.states[sub] is _I:
            raise CoherenceError(
                f"L1 writable line {address:#x} on node {self.node_id} "
                "not backed by a valid L2 subblock"
            )
        frame.states[sub] = MOESI.M

    def _broadcast(self, op: BusOp, address: int) -> BusResult:
        if self.broadcast is None:
            raise CoherenceError("node is not attached to a bus")
        return self.broadcast(op, address)

    def _drain_one(self) -> None:
        """Retire the oldest write-buffer entry to memory."""
        self.wb.drain_oldest()
        self.stats.wb_drains += 1
        if self.on_writeback is not None:
            self.on_writeback()

    def drain_write_buffer(self) -> None:
        """Flush all pending writebacks (end of simulation)."""
        for _entry in self.wb.drain_all():
            self.stats.wb_drains += 1
            if self.on_writeback is not None:
                self.on_writeback()

    def _l1_block_of(self, l2_block: int, sub: int) -> int:
        """Global L1 block number of subblock ``sub`` of an L2 block."""
        ratio_bits = self._l2_shift - self._l1_shift
        return (l2_block << ratio_bits) | sub

    # ==================================================================
    # Bus side
    # ==================================================================

    def snoop(self, op: BusOp, address: int) -> SnoopReply:
        """React to another node's bus transaction.

        The returned reply is a per-node reusable object, valid until
        this node's next snoop — the bus folds it into the transaction
        result immediately (callers must not retain it).
        """
        stats = self.stats
        l2_block = address >> self._l2_shift
        sub = (address >> self._l2_sub_shift) & self._l2_sub_mask
        reply = self._reply
        reply.hit = False
        reply.supplied = False

        # --- Write buffer: probed on every snoop, never filtered -------
        stats.wb_probes += 1
        wb_entry = self._wb_get(l2_block)
        if wb_entry is not None:
            for sub_index, _state in wb_entry.dirty_subblocks:
                if sub_index == sub:
                    stats.wb_hits += 1
                    reply.hit = True
                    reply.supplied = True
                    if op is not BusOp.READ:  # READ_X or UPGRADE
                        self._cancel_wb_subblock(l2_block, sub)
                    break

        # --- L2 tag probe (ground truth; filtering is modelled at replay)
        frame = self._l2_get(l2_block)
        stats.snoops_observed += 1
        stats.snoop_tag_probes += 1
        if frame is None:
            # flag bits: subblock invalid, tag absent.
            self._emit(l2_block << BLOCK_SHIFT)
            stats.snoop_misses += 1
            return reply

        state = frame.states[sub]
        sub_hit = state is not _I
        flag = 3 if sub_hit else 2  # bit 0: subblock valid; bit 1: tag present
        self._emit((l2_block << BLOCK_SHIFT) | (flag << FLAG_SHIFT))

        stats.snoop_block_present += 1
        if sub_hit:
            stats.snoop_hits += 1
        else:
            stats.snoop_misses += 1
            return reply

        reply.hit = True
        if op is BusOp.READ:
            self._snoop_read(frame, sub, state, reply)
        else:
            self._snoop_invalidate(frame, l2_block, sub, state, op, reply)
        return reply

    def _snoop_read(
        self, frame: Frame, sub: int, state: MOESI, reply: SnoopReply
    ) -> None:
        """BusRd: supply data if owner, downgrade exclusivity."""
        stats = self.stats
        if state.owner:
            reply.supplied = True
            stats.snoop_data_supplies += 1
        if frame.in_l1[sub]:
            # The L1 may hold write permission; revoke it.  If the L1 line
            # is dirty its data is pulled into the L2 as part of the
            # supply, leaving the L1 copy clean.
            stats.l1_snoop_probes += 1
            l1_block = self._l1_block_of(frame.block, sub)
            l1_frame = self.l1.find(l1_block, touch=False)
            if l1_frame is not None:
                l1_frame.writable = False
                if l1_frame.dirty:
                    l1_frame.dirty = False
                    stats.l1_writebacks += 1
        new_state = _READ_DOWNGRADE[state]
        if new_state is not state:
            frame.states[sub] = new_state
            stats.snoop_state_updates += 1

    def _snoop_invalidate(
        self,
        frame: Frame,
        l2_block: int,
        sub: int,
        state: MOESI,
        op: BusOp,
        reply: SnoopReply,
    ) -> None:
        """BusRdX / BusUpgr: invalidate our copy, supplying data for RdX."""
        stats = self.stats
        if op is BusOp.READ_X and state.owner:
            reply.supplied = True
            stats.snoop_data_supplies += 1
        if frame.in_l1[sub]:
            stats.l1_snoop_probes += 1
            self.l1.invalidate(self._l1_block_of(l2_block, sub))
            frame.in_l1[sub] = False
        frame.states[sub] = MOESI.I
        stats.snoop_state_updates += 1

    def _cancel_wb_subblock(self, l2_block: int, sub: int) -> None:
        """Drop a write-buffered subblock whose ownership a snoop took."""
        entry = self.wb.remove(l2_block)
        if entry is None:
            return
        remaining = tuple(
            (sub_index, state)
            for sub_index, state in entry.dirty_subblocks
            if sub_index != sub
        )
        if remaining:
            if self.wb.full:
                self._drain_one()
            self.wb.push(l2_block, remaining)
