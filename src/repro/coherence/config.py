"""Memory-system configuration for the simulated SMP.

Two reference configurations are provided:

* :data:`PAPER_SYSTEM` — the paper's full-scale parameters (64 KB L1,
  1 MB L2, 36-bit physical addresses).  Used for analytical energy
  computations (Figure 2, Table 4) where no simulation is involved.
* :data:`SCALED_SYSTEM` — a geometrically scaled system (4 KB L1, 64 KB
  L2) used for trace-driven simulation, so pure-Python runs stay feasible.
  Working sets in :mod:`repro.traces.workloads` are scaled by the same
  ratio, preserving miss rates and snoop-stream locality (see DESIGN.md
  substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.utils.bitops import ilog2, is_power_of_two


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    ``subblock_bytes == block_bytes`` disables subblocking (each block is
    a single coherence unit), matching the paper's "NSB" configuration.
    """

    capacity_bytes: int
    block_bytes: int
    subblock_bytes: int
    ways: int = 1

    def __post_init__(self) -> None:
        for label, value in (
            ("capacity", self.capacity_bytes),
            ("block size", self.block_bytes),
            ("subblock size", self.subblock_bytes),
            ("ways", self.ways),
        ):
            if not is_power_of_two(value):
                raise ConfigurationError(f"{label} must be a power of two, got {value}")
        if self.subblock_bytes > self.block_bytes:
            raise ConfigurationError(
                f"subblock ({self.subblock_bytes} B) larger than block "
                f"({self.block_bytes} B)"
            )
        if self.capacity_bytes < self.block_bytes * self.ways:
            raise ConfigurationError("capacity smaller than one set")

    @property
    def n_blocks(self) -> int:
        return self.capacity_bytes // self.block_bytes

    @property
    def n_sets(self) -> int:
        return self.n_blocks // self.ways

    @property
    def subblocks_per_block(self) -> int:
        return self.block_bytes // self.subblock_bytes

    @property
    def block_offset_bits(self) -> int:
        return ilog2(self.block_bytes)

    @property
    def subblock_offset_bits(self) -> int:
        return ilog2(self.subblock_bytes)

    @property
    def index_bits(self) -> int:
        return ilog2(self.n_sets)

    @property
    def subblocked(self) -> bool:
        return self.subblock_bytes < self.block_bytes


@dataclass(frozen=True)
class SystemConfig:
    """Full SMP memory-system configuration."""

    n_cpus: int = 4
    l1: CacheConfig = CacheConfig(
        capacity_bytes=4 * 1024, block_bytes=32, subblock_bytes=32
    )
    l2: CacheConfig = CacheConfig(
        capacity_bytes=64 * 1024, block_bytes=64, subblock_bytes=32
    )
    wb_entries: int = 8
    address_bits: int = 32
    #: 2 bits of MOSI/MOESI state stored per tag (paper §2.1).
    state_bits: int = 2

    def __post_init__(self) -> None:
        if self.n_cpus < 2:
            raise ConfigurationError(f"an SMP needs >= 2 CPUs, got {self.n_cpus}")
        if self.l1.block_bytes != self.l2.subblock_bytes:
            raise ConfigurationError(
                "the L1 block must equal the L2 coherence unit "
                f"(L1 block {self.l1.block_bytes} B, "
                f"L2 subblock {self.l2.subblock_bytes} B)"
            )
        if self.wb_entries < 1:
            raise ConfigurationError("write buffer needs >= 1 entry")

    @property
    def block_address_bits(self) -> int:
        """Width of an L2 block number — what the JETTYs see."""
        return self.address_bits - self.l2.block_offset_bits

    @property
    def ij_counter_bits(self) -> int:
        """Pessimistic IJ counter width: log2 of the L2 block count."""
        return ilog2(self.l2.n_blocks)

    def without_subblocking(self) -> "SystemConfig":
        """Return the same system with L2 subblocking disabled (NSB).

        The coherence unit becomes the full L2 block, so the L1 block size
        is raised to match it.
        """
        l2 = replace(self.l2, subblock_bytes=self.l2.block_bytes)
        l1 = replace(self.l1, block_bytes=l2.block_bytes, subblock_bytes=l2.block_bytes)
        return replace(self, l1=l1, l2=l2)

    def with_cpus(self, n_cpus: int) -> "SystemConfig":
        """Return the same memory system with a different CPU count."""
        return replace(self, n_cpus=n_cpus)


#: The paper's simulated system (§4.1): SUN SPARC-like, 64 KB direct-mapped
#: L1 with 32 B blocks, 1 MB direct-mapped L2 with 64 B blocks of two 32 B
#: subblocks, MOESI at subblock granularity, 36-bit physical addresses.
PAPER_SYSTEM = SystemConfig(
    n_cpus=4,
    l1=CacheConfig(capacity_bytes=64 * 1024, block_bytes=32, subblock_bytes=32),
    l2=CacheConfig(capacity_bytes=1024 * 1024, block_bytes=64, subblock_bytes=32),
    wb_entries=8,
    address_bits=36,
)

#: Scaled system for simulation: both cache levels scaled by 16x, block and
#: subblock sizes kept, so index/tag behaviour and snoop locality carry over.
SCALED_SYSTEM = SystemConfig(
    n_cpus=4,
    l1=CacheConfig(capacity_bytes=4 * 1024, block_bytes=32, subblock_bytes=32),
    l2=CacheConfig(capacity_bytes=64 * 1024, block_bytes=64, subblock_bytes=32),
    wb_entries=8,
    address_bits=32,
)
