"""MOESI coherence states and classification helpers.

Coherence is maintained per 32-byte subblock (paper §4.1).  The five
states have the usual meaning:

* ``M`` (Modified) — sole dirty copy; memory stale.
* ``O`` (Owned) — dirty copy shared with others; this cache responds.
* ``E`` (Exclusive) — sole clean copy; silent upgrade to M on write.
* ``S`` (Shared) — clean copy, possibly replicated.
* ``I`` (Invalid) — no copy.
"""

from __future__ import annotations

from enum import IntEnum


class MOESI(IntEnum):
    """Subblock coherence state."""

    I = 0
    S = 1
    E = 2
    O = 3
    M = 4

    @property
    def valid(self) -> bool:
        """True for any state holding a copy (not I)."""
        return self is not MOESI.I

    @property
    def dirty(self) -> bool:
        """True when this cache's copy differs from memory (M or O)."""
        return self in (MOESI.M, MOESI.O)

    @property
    def writable(self) -> bool:
        """True when a store may proceed without a bus transaction.

        Writes to E upgrade silently to M; writes to S or O require a bus
        upgrade to invalidate other copies first.
        """
        return self in (MOESI.M, MOESI.E)

    @property
    def owner(self) -> bool:
        """True when this cache must supply data on a bus read (M or O)."""
        return self in (MOESI.M, MOESI.O)
