"""Set-associative cache models with subblocking.

Two structures live here:

* :class:`SetAssocCache` — the L2 model: one tag per block, a MOESI state
  per subblock, an ``in_l1`` inclusion hint per subblock, LRU replacement.
* :class:`L1Cache` — the L1 model: direct-mapped (or set-associative)
  array of blocks sized to the L2 coherence unit, with dirty and writable
  bits.  Coherence state proper lives in the L2; the L1 ``writable`` bit
  mirrors whether the L2 granted write permission (M/E).

Addresses handed to these classes are **block numbers** (byte address
shifted right by the block offset), produced by :class:`CacheGeometry`.

**Tag-probe fast path.**  Both caches keep a flat ``{block: frame}``
index beside the per-set way arrays, so :meth:`SetAssocCache.find` /
:meth:`L1Cache.find` are one dict lookup instead of an O(ways) scan —
``find`` is called on every processor access and every snoop, making it
the hottest function in the simulator.  The index is maintained on every
structural change (allocate, fill, invalidate, deallocate); the way
arrays remain the ground truth for victim selection and the invariant
checker.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coherence.config import CacheConfig
from repro.coherence.states import MOESI
from repro.utils.bitops import mask
from repro.utils.lru import LRUTracker


@dataclass(frozen=True)
class CacheGeometry:
    """Address decomposition helper for one cache level."""

    config: CacheConfig

    def block_number(self, address: int) -> int:
        """Byte address -> block number."""
        return address >> self.config.block_offset_bits

    def subblock_index(self, address: int) -> int:
        """Byte address -> subblock index within its block."""
        if not self.config.subblocked:
            return 0
        sub_bits = self.config.block_offset_bits - self.config.subblock_offset_bits
        return (address >> self.config.subblock_offset_bits) & mask(sub_bits)

    def set_index(self, block_number: int) -> int:
        return block_number & mask(self.config.index_bits)


class Frame:
    """One allocated L2 block frame."""

    __slots__ = ("block", "way", "states", "in_l1")

    def __init__(self, block: int, n_subblocks: int, way: int = 0) -> None:
        self.block = block
        self.way = way
        self.states: list[MOESI] = [MOESI.I] * n_subblocks
        self.in_l1: list[bool] = [False] * n_subblocks

    def any_valid(self) -> bool:
        """True when at least one subblock holds a copy."""
        return any(s is not MOESI.I for s in self.states)

    def dirty_subblocks(self) -> list[tuple[int, MOESI]]:
        """``(index, state)`` of subblocks whose copy differs from memory.

        The state travels with the data into the write buffer so a
        reclaimed Owned copy is restored as Owned, never promoted to
        Modified (which would manufacture exclusivity).
        """
        return [(i, s) for i, s in enumerate(self.states) if s.dirty]


@dataclass
class EvictedBlock:
    """Description of a block displaced by :meth:`SetAssocCache.allocate`."""

    block: int
    dirty_subblocks: tuple[tuple[int, MOESI], ...]
    l1_subblocks: tuple[int, ...]

    @property
    def dirty(self) -> bool:
        return bool(self.dirty_subblocks)


class SetAssocCache:
    """Set-associative, subblocked cache with LRU replacement (the L2)."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.geometry = CacheGeometry(config)
        self._sets: list[list[Frame | None]] = [
            [None] * config.ways for _ in range(config.n_sets)
        ]
        self._lru: list[LRUTracker] = [
            LRUTracker(config.ways) for _ in range(config.n_sets)
        ]
        #: O(1) tag probe: every resident block, whatever its set.
        self._by_block: dict[int, Frame] = {}
        self._set_mask = (1 << config.index_bits) - 1
        self._multiway = config.ways > 1

    # ------------------------------------------------------------------

    def find(self, block: int, touch: bool = False) -> Frame | None:
        """Return the frame holding ``block``, or None on a tag miss.

        ``touch=True`` refreshes LRU state (local accesses do; snoops in
        this model do not perturb replacement order).  Direct-mapped
        caches skip the LRU bookkeeping entirely — a one-way recency
        order cannot change.
        """
        frame = self._by_block.get(block)
        if frame is not None and touch and self._multiway:
            self._lru[block & self._set_mask].touch(frame.way)
        return frame

    def allocate(self, block: int) -> tuple[Frame, EvictedBlock | None]:
        """Allocate a frame for ``block``, evicting the LRU victim if needed.

        Returns the fresh frame (all subblocks Invalid) and a description
        of the displaced block, or None if a way was free.  The caller owns
        writing back dirty victim subblocks and maintaining L1 inclusion.
        """
        set_index = block & self._set_mask
        ways = self._sets[set_index]
        lru = self._lru[set_index]

        victim_way = None
        for way, frame in enumerate(ways):
            if frame is None:
                victim_way = way
                break
        evicted = None
        if victim_way is None:
            victim_way = lru.victim()
            victim = ways[victim_way]
            assert victim is not None
            del self._by_block[victim.block]
            evicted = EvictedBlock(
                block=victim.block,
                dirty_subblocks=tuple(victim.dirty_subblocks()),
                l1_subblocks=tuple(
                    i for i, present in enumerate(victim.in_l1) if present
                ),
            )

        frame = Frame(block, self.config.subblocks_per_block, victim_way)
        ways[victim_way] = frame
        self._by_block[block] = frame
        lru.touch(victim_way)
        return frame, evicted

    def deallocate(self, block: int) -> None:
        """Drop the frame holding ``block`` (used when reclaiming via WB).

        The freed way is retired to the LRU end so it is the preferred
        victim for the next allocate — leaving it wherever it sat in the
        recency order would let a stale position shield a *valid* block
        from eviction.
        """
        frame = self._by_block.pop(block, None)
        if frame is None:
            return
        set_index = block & self._set_mask
        self._sets[set_index][frame.way] = None
        self._lru[set_index].retire(frame.way)

    # ------------------------------------------------------------------

    def resident_blocks(self) -> list[int]:
        """All currently allocated block numbers (tests/inspection)."""
        return [
            frame.block
            for ways in self._sets
            for frame in ways
            if frame is not None
        ]

    def snapshot(self) -> dict:
        """Serialisable logical state: resident frames plus LRU orders.

        Each frame is ``[block, way, states, in_l1]`` with the MOESI
        states joined into a string of one-letter names and the L1
        inclusion hints packed into a bitmask — compact enough that
        checkpointing a paper-scale run stays cheap.  Direct-mapped
        caches omit the (trivial) LRU orders.  The flat ``_by_block``
        tag index is *derived* state and deliberately absent:
        :meth:`restore` rebuilds it.
        """
        frames = []
        for ways in self._sets:
            for frame in ways:
                if frame is None:
                    continue
                frames.append([
                    frame.block,
                    frame.way,
                    "".join(s.name for s in frame.states),
                    sum(1 << i for i, bit in enumerate(frame.in_l1) if bit),
                ])
        return {
            "frames": frames,
            "lru": (
                [tracker.snapshot() for tracker in self._lru]
                if self._multiway else None
            ),
        }

    def restore(self, state: dict) -> None:
        """Adopt a snapshot, rebuilding all derived state.

        The way arrays are repopulated from the frame list and the flat
        ``_by_block`` index is rebuilt **in place** — hot-path consumers
        hold bound references to the dict itself
        (:class:`~repro.coherence.node.CacheNode` caches its ``.get``),
        so the object identity must survive a restore.
        """
        n_subblocks = self.config.subblocks_per_block
        for ways in self._sets:
            for way in range(len(ways)):
                ways[way] = None
        self._by_block.clear()
        for block, way, states, in_l1 in state["frames"]:
            frame = Frame(block, n_subblocks, way)
            frame.states = [MOESI[name] for name in states]
            frame.in_l1 = [bool(in_l1 >> i & 1) for i in range(n_subblocks)]
            self._sets[block & self._set_mask][way] = frame
            self._by_block[block] = frame
        if self._multiway:
            for tracker, order in zip(self._lru, state["lru"]):
                tracker.restore(order)

    def valid_subblock_count(self) -> int:
        """Total subblocks in a valid state across the cache."""
        return sum(
            1
            for ways in self._sets
            for frame in ways
            if frame is not None
            for s in frame.states
            if s is not MOESI.I
        )


class L1Frame:
    """One L1 block (equal to the L2 coherence unit)."""

    __slots__ = ("block", "way", "dirty", "writable")

    def __init__(self, block: int, writable: bool, way: int = 0) -> None:
        self.block = block
        self.way = way
        self.dirty = False
        self.writable = writable


class L1Cache:
    """The first-level cache: valid/dirty/writable per block, LRU."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.geometry = CacheGeometry(config)
        self._sets: list[list[L1Frame | None]] = [
            [None] * config.ways for _ in range(config.n_sets)
        ]
        self._lru: list[LRUTracker] = [
            LRUTracker(config.ways) for _ in range(config.n_sets)
        ]
        self._by_block: dict[int, L1Frame] = {}
        self._set_mask = (1 << config.index_bits) - 1
        self._multiway = config.ways > 1

    def find(self, block: int, touch: bool = True) -> L1Frame | None:
        frame = self._by_block.get(block)
        if frame is not None and touch and self._multiway:
            self._lru[block & self._set_mask].touch(frame.way)
        return frame

    def fill(self, block: int, writable: bool) -> L1Frame | None:
        """Install ``block``; return the displaced frame (for writeback).

        Re-filling a resident block (e.g. after a write-permission upgrade)
        refreshes its permission in place instead of installing a duplicate.
        """
        set_index = block & self._set_mask
        lru = self._lru[set_index]
        frame = self._by_block.get(block)
        if frame is not None:
            frame.writable = writable
            if self._multiway:
                lru.touch(frame.way)
            return None
        ways = self._sets[set_index]
        victim_way = None
        for way, frame in enumerate(ways):
            if frame is None:
                victim_way = way
                break
        displaced = None
        if victim_way is None:
            victim_way = lru.victim()
            displaced = ways[victim_way]
            assert displaced is not None
            del self._by_block[displaced.block]
        installed = L1Frame(block, writable, victim_way)
        ways[victim_way] = installed
        self._by_block[block] = installed
        lru.touch(victim_way)
        return displaced

    def invalidate(self, block: int) -> L1Frame | None:
        """Remove ``block`` if present; return the dropped frame.

        Like :meth:`SetAssocCache.deallocate`, the freed way is retired
        to the LRU end so the next fill prefers it over evicting a live
        block.
        """
        frame = self._by_block.pop(block, None)
        if frame is None:
            return None
        set_index = block & self._set_mask
        self._sets[set_index][frame.way] = None
        self._lru[set_index].retire(frame.way)
        return frame

    def resident_blocks(self) -> list[int]:
        return [
            frame.block
            for ways in self._sets
            for frame in ways
            if frame is not None
        ]

    def snapshot(self) -> dict:
        """Serialisable logical state (see :meth:`SetAssocCache.snapshot`).

        Frames are ``[block, way, dirty, writable]`` with the two flag
        bits as 0/1 ints.
        """
        frames = []
        for ways in self._sets:
            for frame in ways:
                if frame is None:
                    continue
                frames.append([
                    frame.block,
                    frame.way,
                    int(frame.dirty),
                    int(frame.writable),
                ])
        return {
            "frames": frames,
            "lru": (
                [tracker.snapshot() for tracker in self._lru]
                if self._multiway else None
            ),
        }

    def restore(self, state: dict) -> None:
        """Adopt a snapshot; ``_by_block`` is rebuilt in place (the
        :class:`~repro.coherence.smp.SMPSystem` fast path aliases it)."""
        for ways in self._sets:
            for way in range(len(ways)):
                ways[way] = None
        self._by_block.clear()
        for block, way, dirty, writable in state["frames"]:
            frame = L1Frame(block, bool(writable), way)
            frame.dirty = bool(dirty)
            self._sets[block & self._set_mask][way] = frame
            self._by_block[block] = frame
        if self._multiway:
            for tracker, order in zip(self._lru, state["lru"]):
                tracker.restore(order)
