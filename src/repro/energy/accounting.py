"""Fold simulation statistics and filter evaluations into energy numbers.

This module produces the quantities Figure 6 plots:

* energy reduction **over all snoop accesses** — how much of the energy
  the L2s spend servicing snoops a JETTY eliminates, net of its own
  consumption;
* energy reduction **over all L2 accesses** — the same savings expressed
  against everything the L2s do (local traffic included);

each for a **serial** tag-then-data L2 (Alpha 21164 / Xeon style, Figure
6a-b) and a **parallel** tag+data L2 (Figure 6c-d).

Accounting rules (matching the paper's §4.4 description):

* every snoop probes the write buffer, filtered or not;
* an unfiltered snoop pays a tag probe; a snoop hit additionally pays a
  data-array access (the paper's pessimistic assumption) and a state
  update;
* in the parallel organisation the data array is read alongside *every*
  tag probe (local or snoop, hit or miss), so a filtered snoop saves tag
  and data energy;
* JETTY energy includes probes on every snoop, exclude-entry writes,
  include-counter read-modify-writes on every L2 allocate/evict, and the
  tag-width transfer of replaced-block addresses to the IJ.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coherence.config import PAPER_SYSTEM, SystemConfig
from repro.coherence.metrics import NodeStats
from repro.core.config import FilterConfig, parse_filter_name
from repro.core.stats import FilterEvaluation
from repro.energy.components import (
    CacheEnergyModel,
    JettyEnergyModel,
    WriteBufferEnergyModel,
)
from repro.energy.technology import TECH_180NM, TechnologyParams


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules spent by one node population over one measured run."""

    local_tag_j: float
    local_data_j: float
    snoop_tag_j: float
    snoop_data_j: float
    wb_j: float
    jetty_j: float

    @property
    def snoop_total_j(self) -> float:
        """Everything a snoop costs: L2 arrays, WB probes, the JETTY."""
        return self.snoop_tag_j + self.snoop_data_j + self.wb_j + self.jetty_j

    @property
    def total_j(self) -> float:
        return (
            self.local_tag_j
            + self.local_data_j
            + self.snoop_total_j
        )


@dataclass(frozen=True)
class EnergyReduction:
    """Figure 6's four numbers for one (workload, filter) pair."""

    filter_name: str
    over_snoops_serial: float
    over_all_serial: float
    over_snoops_parallel: float
    over_all_parallel: float


class EnergyAccountant:
    """Price simulator statistics at the paper-scale memory system.

    The simulation may run at a scaled geometry; per-access energies are
    always computed for ``system`` (default: the paper's 1 MB L2 machine),
    so reported reductions describe the machine the paper describes.
    """

    def __init__(
        self,
        system: SystemConfig = PAPER_SYSTEM,
        tech: TechnologyParams = TECH_180NM,
    ) -> None:
        self.system = system
        self.tech = tech
        self.l2 = CacheEnergyModel(
            system.l2, system.address_bits, system.state_bits, tech
        )
        self.wb = WriteBufferEnergyModel(
            system.wb_entries, system.block_address_bits, tech
        )
        self.jetty_models = JettyEnergyModel(
            system.block_address_bits, system.ij_counter_bits, tech
        )

    # ------------------------------------------------------------------

    def breakdown(
        self,
        stats: NodeStats,
        evaluation: FilterEvaluation | None = None,
        filter_config: FilterConfig | str | None = None,
        parallel: bool = False,
    ) -> EnergyBreakdown:
        """Energy of one run, optionally with a JETTY filtering snoops.

        ``stats`` are the aggregate node counters; ``evaluation`` is the
        merged filter replay over the same run (None = baseline system).
        """
        filtered = evaluation.coverage.filtered if evaluation is not None else 0

        tag_probe = self.l2.tag_probe()
        tag_update = self.l2.tag_update()
        data_read = self.l2.data_read()
        data_read_par = self.l2.data_read_parallel()
        data_write = self.l2.data_write()

        # --- locally initiated traffic --------------------------------
        local_tag_j = (
            stats.l2_local_tag_probes * tag_probe
            + stats.l2_local_tag_updates * tag_update
        )
        if parallel:
            local_data_j = (
                stats.l2_local_tag_probes * data_read_par
                + stats.l2_local_data_writes * data_write
            )
        else:
            local_data_j = (
                stats.l2_local_data_reads * data_read
                + stats.l2_local_data_writes * data_write
            )

        # --- snoop-induced traffic -------------------------------------
        snoop_probes = stats.snoop_tag_probes - filtered
        snoop_tag_j = (
            snoop_probes * tag_probe + stats.snoop_state_updates * tag_update
        )
        if parallel:
            snoop_data_j = snoop_probes * data_read_par
        else:
            snoop_data_j = stats.snoop_hits * data_read

        wb_j = stats.wb_probes * self.wb.probe()

        # --- the JETTY itself ------------------------------------------
        jetty_j = 0.0
        if evaluation is not None:
            if filter_config is None:
                filter_config = evaluation.filter_name
            if isinstance(filter_config, str):
                filter_config = parse_filter_name(filter_config)
            profile = self.jetty_models.profile(filter_config)
            events = evaluation.events
            jetty_j = profile.total(
                probes=events.probes,
                entry_writes=events.entry_writes,
                cnt_updates=events.cnt_updates,
                pbit_writes=events.pbit_writes,
                transfers=evaluation.allocs + evaluation.evicts,
            )

        return EnergyBreakdown(
            local_tag_j=local_tag_j,
            local_data_j=local_data_j,
            snoop_tag_j=snoop_tag_j,
            snoop_data_j=snoop_data_j,
            wb_j=wb_j,
            jetty_j=jetty_j,
        )

    # ------------------------------------------------------------------

    def reduction(
        self,
        stats: NodeStats,
        evaluation: FilterEvaluation,
        filter_config: FilterConfig | str | None = None,
    ) -> EnergyReduction:
        """Compute all four Figure 6 reduction numbers for one filter."""
        results = {}
        for parallel in (False, True):
            base = self.breakdown(stats, parallel=parallel)
            with_jetty = self.breakdown(
                stats, evaluation, filter_config, parallel=parallel
            )
            over_snoops = _relative_saving(
                base.snoop_total_j, with_jetty.snoop_total_j
            )
            over_all = _relative_saving(base.total_j, with_jetty.total_j)
            results[parallel] = (over_snoops, over_all)
        return EnergyReduction(
            filter_name=evaluation.filter_name,
            over_snoops_serial=results[False][0],
            over_all_serial=results[False][1],
            over_snoops_parallel=results[True][0],
            over_all_parallel=results[True][1],
        )


def _relative_saving(baseline_j: float, actual_j: float) -> float:
    """(baseline - actual) / baseline, 0 when there is no baseline."""
    if baseline_j <= 0.0:
        return 0.0
    return (baseline_j - actual_j) / baseline_j
