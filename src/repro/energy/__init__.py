"""Energy substrate: the Kamble-Ghose cache energy model and accounting.

The paper estimates energy with the analytical model of Kamble & Ghose
(ISLPED'97), with array banking chosen by CACTI for a 0.18 um process at
1.8 V.  This package reimplements that stack:

* :mod:`repro.energy.technology` — process constants (0.18 um, 1.8 V);
* :mod:`repro.energy.geometry` — SRAM array shapes and the CACTI-style
  bank-count optimiser;
* :mod:`repro.energy.kamble_ghose` — per-access energy of one SRAM array
  (bitlines, wordlines, sense amps, address/output drivers);
* :mod:`repro.energy.components` — per-structure models: L2 tag and data
  arrays (serial or parallel access), write-buffer CAM, EJ/VEJ arrays,
  IJ p-bit and counter arrays;
* :mod:`repro.energy.accounting` — folds simulator statistics and filter
  replay results into the energy-reduction numbers of Figure 6.

Per-access energies are always computed at the *paper's* full-scale
geometry (1 MB L2, 36-bit addresses) regardless of the simulated scale:
the simulation supplies access-type mixes, the energy model supplies what
each access costs on the machine the paper describes.
"""

from repro.energy.accounting import EnergyAccountant, EnergyBreakdown, EnergyReduction
from repro.energy.components import (
    CacheEnergyModel,
    JettyEnergyModel,
    WriteBufferEnergyModel,
)
from repro.energy.geometry import ArrayGeometry, optimal_banking
from repro.energy.kamble_ghose import SRAMArray, array_read_energy, array_write_energy
from repro.energy.technology import TECH_180NM, TechnologyParams

__all__ = [
    "ArrayGeometry",
    "CacheEnergyModel",
    "EnergyAccountant",
    "EnergyBreakdown",
    "EnergyReduction",
    "JettyEnergyModel",
    "SRAMArray",
    "TECH_180NM",
    "TechnologyParams",
    "WriteBufferEnergyModel",
    "array_read_energy",
    "array_write_energy",
    "optimal_banking",
]
