"""Per-structure energy models: L2 arrays, write buffer, JETTY variants.

Each model wraps the Kamble-Ghose array primitives with the structure's
actual geometry (banked via the CACTI-style optimiser) and exposes the
per-event energies the accountant multiplies by event counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coherence.config import CacheConfig
from repro.core.config import (
    EJConfig,
    FilterConfig,
    HIJConfig,
    HJConfig,
    IJConfig,
    NullConfig,
    OracleConfig,
    VEJConfig,
)
from repro.energy.geometry import ArrayGeometry, optimal_banking
from repro.energy.kamble_ghose import (
    SRAMArray,
    array_read_energy,
    array_write_energy,
    cam_search_energy,
)
from repro.energy.technology import TECH_180NM, TechnologyParams
from repro.errors import ConfigurationError


class CacheEnergyModel:
    """Tag- and data-array access energies of one cache level.

    The tag array holds ``ways x (tag + state)`` bits per set; a probe
    senses every way's tag (the paper's high-associativity concern — §1).
    The data array holds the full block per way; a *serial* organisation
    reads only the selected way's subblock after the tag resolves, a
    *parallel* organisation reads the data alongside every tag probe
    (Figure 6 contrasts the two).
    """

    def __init__(
        self,
        config: CacheConfig,
        address_bits: int,
        state_bits: int = 2,
        tech: TechnologyParams = TECH_180NM,
    ) -> None:
        self.config = config
        self.tech = tech
        self.tag_bits = address_bits - config.block_offset_bits - config.index_bits
        if self.tag_bits <= 0:
            raise ConfigurationError(
                f"no tag bits left: {address_bits}-bit addresses, "
                f"{config.n_sets} sets of {config.block_bytes} B blocks"
            )
        self.state_bits = state_bits
        tag_cols = config.ways * (self.tag_bits + state_bits)
        data_cols = config.ways * config.block_bytes * 8
        # Banking calibration: the tag array is modelled monolithic (the
        # Kamble-Ghose assumption) while the wide data array banks the
        # CACTI way.  This combination reproduces the paper's own Section
        # 2.1 anchor — snoop-miss tag energy ~33% of all-L2 energy at a
        # 50% local / 10% remote hit rate for the 1 MB 4-way 32 B-block
        # configuration (tested in tests/test_analytical.py).
        self.tag_array = SRAMArray(
            optimal_banking(config.n_sets, tag_cols, tech, max_banks=1)
        )
        self.data_array = SRAMArray(
            optimal_banking(
                config.n_sets, data_cols, tech, max_banks=64,
                bits_read=config.subblock_bytes * 8,
            )
        )
        self.subblock_bits = config.subblock_bytes * 8

    # -- per-event energies (J) ----------------------------------------

    def tag_probe(self) -> float:
        """Read all ways' tags and states for one set.

        The comparison happens next to the array; only a hit signal and a
        way select leave it.
        """
        hit_and_way = 1 + max(1, (self.config.ways - 1).bit_length())
        return array_read_energy(self.tag_array, self.tech, bits_out=hit_and_way)

    def tag_update(self) -> float:
        """Write one way's tag + state."""
        return array_write_energy(
            self.tag_array, self.tech,
            bits_written=self.tag_bits + self.state_bits,
        )

    def data_read(self) -> float:
        """Read one subblock from the selected way (serial organisation)."""
        return array_read_energy(
            self.data_array, self.tech, bits_read=self.subblock_bits
        )

    def data_read_parallel(self) -> float:
        """Read every way's subblock alongside the tag probe."""
        return array_read_energy(
            self.data_array, self.tech,
            bits_read=self.subblock_bits * self.config.ways,
        )

    def data_write(self) -> float:
        """Write one subblock (fill or writeback merge)."""
        return array_write_energy(
            self.data_array, self.tech, bits_written=self.subblock_bits
        )


class WriteBufferEnergyModel:
    """The write-back buffer CAM probed by every snoop."""

    def __init__(
        self,
        entries: int,
        tag_bits: int,
        tech: TechnologyParams = TECH_180NM,
    ) -> None:
        self.entries = entries
        self.tag_bits = tag_bits
        self.tech = tech

    def probe(self) -> float:
        """One associative search across all entries."""
        return cam_search_energy(self.entries, self.tag_bits, self.tech)


@dataclass(frozen=True)
class JettyEnergyProfile:
    """Per-event energies of one JETTY structure (J)."""

    probe: float
    entry_write: float
    cnt_update: float
    pbit_write: float
    update_transfer: float

    def total(
        self,
        probes: int,
        entry_writes: int,
        cnt_updates: int,
        pbit_writes: int,
        transfers: int,
    ) -> float:
        """Fold event counts into joules."""
        return (
            probes * self.probe
            + entry_writes * self.entry_write
            + cnt_updates * self.cnt_update
            + pbit_writes * self.pbit_write
            + transfers * self.update_transfer
        )


class JettyEnergyModel:
    """Build the energy profile of any JETTY configuration.

    Exclude-style filters are priced as small set-associative tag arrays
    (a probe senses all ways of one set).  Include-style filters price a
    probe as one row read per p-bit sub-array; counter maintenance is a
    read-modify-write of one counter per sub-array plus the tag-width
    transfer of the replaced-block address from the L2 (paper §3.2).
    """

    def __init__(
        self,
        block_address_bits: int,
        counter_bits: int,
        tech: TechnologyParams = TECH_180NM,
    ) -> None:
        self.block_address_bits = block_address_bits
        self.counter_bits = counter_bits
        self.tech = tech

    def profile(self, config: FilterConfig) -> JettyEnergyProfile:
        """Return per-event energies for ``config``."""
        if isinstance(config, (NullConfig, OracleConfig)):
            return JettyEnergyProfile(0.0, 0.0, 0.0, 0.0, 0.0)
        if isinstance(config, (EJConfig, VEJConfig)):
            return self._exclude_profile(config)
        if isinstance(config, IJConfig):
            return self._include_profile(config)
        if isinstance(config, HIJConfig):
            return self._hashed_profile(config)
        if isinstance(config, HJConfig):
            ij = self._include_profile(config.include)
            ej = self._exclude_profile(config.exclude)
            # Both components are probed in parallel on every snoop.
            return JettyEnergyProfile(
                probe=ij.probe + ej.probe,
                entry_write=ej.entry_write,
                cnt_update=ij.cnt_update,
                pbit_write=ij.pbit_write,
                update_transfer=ij.update_transfer,
            )
        raise ConfigurationError(f"cannot price filter config {config!r}")

    # ------------------------------------------------------------------

    def _exclude_profile(self, config: EJConfig | VEJConfig) -> JettyEnergyProfile:
        index_bits = max(0, (config.sets - 1).bit_length())
        if isinstance(config, VEJConfig):
            vec_bits = max(0, (config.vector_bits - 1).bit_length())
            entry_bits = (
                self.block_address_bits - vec_bits - index_bits + config.vector_bits
            )
        else:
            entry_bits = self.block_address_bits - index_bits + 1
        entry_bits = max(entry_bits, 1)
        array = SRAMArray(
            ArrayGeometry(rows=config.sets, cols=config.ways * entry_bits)
        )
        return JettyEnergyProfile(
            # Tag comparison is internal; a single filtered/not signal
            # leaves the structure.
            probe=array_read_energy(array, self.tech, bits_out=1),
            entry_write=array_write_energy(array, self.tech, bits_written=entry_bits),
            cnt_update=0.0,
            pbit_write=0.0,
            update_transfer=0.0,
        )

    def _hashed_profile(self, config: HIJConfig) -> JettyEnergyProfile:
        """One p-bit array probed through ``k`` hash positions.

        The k probe positions hit arbitrary rows, so the array performs k
        independent single-bit reads (banked row reads in hardware); the
        counter array likewise sees k read-modify-writes per L2 event.
        """
        entries = 1 << config.entry_bits
        cols = max(16, 1 << ((config.entry_bits + 1) // 2))
        cols = min(cols, entries)
        pbit_array = SRAMArray(ArrayGeometry(rows=entries // cols, cols=cols))
        probe = config.k * array_read_energy(
            pbit_array, self.tech, bits_read=1, bits_out=1
        )
        cnt_array = SRAMArray(
            optimal_banking(entries, self.counter_bits, self.tech, max_banks=8)
        )
        cnt_rmw = array_read_energy(
            cnt_array, self.tech, bits_read=self.counter_bits
        ) + array_write_energy(cnt_array, self.tech, bits_written=self.counter_bits)
        transfer = self.block_address_bits * self.tech.switch_energy(
            self.tech.c_address_line
        )
        return JettyEnergyProfile(
            probe=probe,
            entry_write=0.0,
            cnt_update=cnt_rmw,
            pbit_write=array_write_energy(pbit_array, self.tech, bits_written=1),
            update_transfer=transfer,
        )

    def _include_profile(self, config: IJConfig) -> JettyEnergyProfile:
        n_arrays, rows, cols = config.pbit_organization()
        pbit_array = SRAMArray(ArrayGeometry(rows=rows, cols=cols))
        # A probe column-selects the single presence bit per sub-array
        # (part of the index picks the row, the rest the bit — Fig. 3c),
        # so only one sense amplifier fires per sub-array.
        probe = n_arrays * array_read_energy(
            pbit_array, self.tech, bits_read=1, bits_out=1
        )

        # Counter arrays: one counter-width word per entry, banked like
        # any other narrow SRAM.
        cnt_array = SRAMArray(
            optimal_banking(
                1 << config.entry_bits, self.counter_bits, self.tech,
                max_banks=8,
            )
        )
        cnt_rmw = array_read_energy(
            cnt_array, self.tech, bits_read=self.counter_bits
        ) + array_write_energy(cnt_array, self.tech, bits_written=self.counter_bits)

        pbit_write = array_write_energy(pbit_array, self.tech, bits_written=1)
        transfer = self.block_address_bits * self.tech.switch_energy(
            self.tech.c_address_line
        )
        return JettyEnergyProfile(
            probe=probe,
            entry_write=0.0,
            cnt_update=cnt_rmw,
            pbit_write=pbit_write,
            update_transfer=transfer,
        )
