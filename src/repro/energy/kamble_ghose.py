"""Per-access energy of one SRAM array (Kamble & Ghose, ISLPED'97).

The model sums four switching-energy components per access:

* **bitlines** — precharge and discharge of every column in the active
  bank; reads use a reduced sensing swing, writes drive the full rail on
  the written columns;
* **wordline** — the gate and wire capacitance of one asserted row;
* **sense amplifiers / output drivers** — per column read out;
* **address input lines** — the decoder fan-in.

These are the same terms (at the same level of abstraction) the paper's
Section 4.1 energy analysis uses; absolute joule values depend on the
technology constants, but all reported results are energy *ratios*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.geometry import ArrayGeometry
from repro.energy.technology import TechnologyParams
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SRAMArray:
    """An SRAM array instance: geometry plus derived capacitances."""

    geometry: ArrayGeometry

    def bitline_capacitance(self, tech: TechnologyParams) -> float:
        """Capacitance of one column's bitline in the active bank (F)."""
        rows = self.geometry.rows
        wire = rows * tech.cell_height_um * tech.c_wire_per_um
        return rows * tech.c_bitline_drain + wire + tech.c_precharge

    def wordline_capacitance(self, tech: TechnologyParams) -> float:
        """Capacitance of one asserted wordline (F)."""
        cols = self.geometry.cols
        wire = cols * tech.cell_width_um * tech.c_wire_per_um
        return cols * tech.c_wordline_gate + wire

    def htree_span_um(self, tech: TechnologyParams) -> float:
        """Half-perimeter of the full (all-banks) array footprint (um).

        Addresses reach the active bank, and read data returns, over an
        H-tree whose wire length grows with the *total* array area.  This
        is the term that makes a megabyte-scale array intrinsically more
        expensive per access than a bus-side JETTY, no matter how finely
        the big array is banked.
        """
        area_um2 = (
            self.geometry.total_bits * tech.cell_height_um * tech.cell_width_um
        )
        return area_um2 ** 0.5

    def routing_energy(
        self, tech: TechnologyParams, lines: int
    ) -> float:
        """Energy to drive ``lines`` signals across the array's H-tree."""
        c_wire = self.htree_span_um(tech) * tech.c_wire_per_um
        return lines * tech.switch_energy(c_wire)

    def overhead_energy(self, tech: TechnologyParams) -> float:
        """Per-access banking overhead (replicated control, bank select)."""
        return self.geometry.banks * tech.e_bank_overhead


def array_read_energy(
    array: SRAMArray,
    tech: TechnologyParams,
    bits_read: int | None = None,
    bits_out: int | None = None,
) -> float:
    """Energy (J) of one read access to the array.

    ``bits_read`` is the number of columns sensed; all columns still pay
    precharge/swing (differential pairs are precharged per access
    regardless of muxing).  ``bits_out`` is the number of signals driven
    out of the array — the full word for a data read, but only a hit/way
    indication for a tag or filter probe whose comparison happens inside
    the structure.
    """
    geometry = array.geometry
    if bits_read is None:
        bits_read = geometry.cols
    if bits_out is None:
        bits_out = bits_read
    if bits_read > geometry.cols:
        raise ConfigurationError(
            f"cannot read {bits_read} bits from a {geometry.cols}-column array"
        )
    # Differential pair => factor 2 on bitline switching.
    e_bitlines = (
        2.0
        * geometry.cols
        * tech.switch_energy(array.bitline_capacitance(tech), tech.read_swing)
    )
    e_wordline = tech.switch_energy(array.wordline_capacitance(tech))
    e_sense = bits_read * tech.e_sense_amp
    e_output = bits_out * tech.switch_energy(tech.c_output_line)
    e_address = geometry.address_bits * tech.switch_energy(tech.c_address_line)
    e_route = array.routing_energy(tech, geometry.address_bits + bits_out)
    e_banks = array.overhead_energy(tech)
    return e_bitlines + e_wordline + e_sense + e_output + e_address + e_route + e_banks


def array_write_energy(
    array: SRAMArray,
    tech: TechnologyParams,
    bits_written: int | None = None,
) -> float:
    """Energy (J) of one write access to the array.

    Written columns swing the full rail; unwritten columns in the active
    bank still pay the precharge/read swing (they are precharged with the
    rest of the bank).
    """
    geometry = array.geometry
    if bits_written is None:
        bits_written = geometry.cols
    if bits_written > geometry.cols:
        raise ConfigurationError(
            f"cannot write {bits_written} bits to a {geometry.cols}-column array"
        )
    c_bitline = array.bitline_capacitance(tech)
    e_written = 2.0 * bits_written * tech.switch_energy(c_bitline)
    idle_cols = geometry.cols - bits_written
    e_idle = 2.0 * idle_cols * tech.switch_energy(c_bitline, tech.read_swing)
    e_wordline = tech.switch_energy(array.wordline_capacitance(tech))
    e_address = geometry.address_bits * tech.switch_energy(tech.c_address_line)
    e_route = array.routing_energy(tech, geometry.address_bits + bits_written)
    e_banks = array.overhead_energy(tech)
    return e_written + e_idle + e_wordline + e_address + e_route + e_banks


def cam_search_energy(
    entries: int, tag_bits: int, tech: TechnologyParams
) -> float:
    """Energy (J) of a fully associative (CAM) search.

    Every entry compares every tag bit against the broadcast search key —
    this is the write-buffer probe each snoop performs.
    """
    e_compare = entries * tag_bits * tech.e_cam_compare_per_bit
    e_broadcast = tag_bits * tech.switch_energy(tech.c_address_line)
    return e_compare + e_broadcast
