"""Process technology parameters for the energy model.

The paper assumes a 0.18 um CMOS process at 1.8 V with the interconnect
characteristics of Cong et al. (ICCAD'97 tutorial).  The constants below
are lumped per-cell/per-micron capacitances of the kind the Kamble-Ghose
model consumes.  Their absolute values set the energy *scale*; every
number the benches report is a ratio (reduction percentages), which
depends only on relative structure sizes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TechnologyParams:
    """Lumped circuit parameters of one process node."""

    name: str
    #: Supply voltage (V).
    vdd: float
    #: Bitline voltage swing on reads (V); writes swing the full rail.
    read_swing: float
    #: Drain capacitance one cell's pass transistor adds to a bitline (F).
    c_bitline_drain: float
    #: Gate capacitance one cell's two pass transistors add to a wordline (F).
    c_wordline_gate: float
    #: Wire capacitance per micron of metal (F/um).
    c_wire_per_um: float
    #: SRAM cell height and width (um) — sets wire lengths in arrays.
    cell_height_um: float
    cell_width_um: float
    #: Bitline precharge circuit capacitance per column (F).
    c_precharge: float
    #: Energy per sense amplifier activation (J).
    e_sense_amp: float
    #: Capacitance of one address/input line into a decoder (F).
    c_address_line: float
    #: Capacitance of one output driver line (F).
    c_output_line: float
    #: Energy per bit of a CAM match-line comparison (J).
    e_cam_compare_per_bit: float
    #: Fixed per-bank per-access overhead (bank select, duplicated
    #: decode/precharge control) (J).  Grows linearly with bank count and
    #: is what gives the banking search an interior optimum.
    e_bank_overhead: float

    def switch_energy(self, capacitance: float, swing: float | None = None) -> float:
        """CV*Vswing switching energy (J) for one charge/discharge."""
        if swing is None:
            swing = self.vdd
        return capacitance * self.vdd * swing


#: 0.18 um, 1.8 V — the paper's process (Section 4.1, citing Cong et al.).
TECH_180NM = TechnologyParams(
    name="0.18um",
    vdd=1.8,
    read_swing=0.45,  # reduced-swing sensing, ~Vdd/4
    c_bitline_drain=1.8e-15,
    c_wordline_gate=1.6e-15,
    c_wire_per_um=0.27e-15,
    cell_height_um=2.4,
    cell_width_um=2.6,
    c_precharge=12e-15,
    e_sense_amp=6.0e-14,
    c_address_line=50e-15,
    c_output_line=30e-15,
    e_cam_compare_per_bit=4.0e-15,
    e_bank_overhead=0.6e-12,
)
