"""SRAM array geometry and the CACTI-style banking optimiser.

A logical array of R rows by C columns can be implemented as B identical
banks of R/B rows, with only one bank activated per access.  More banks
shorten the active bitlines (saving bitline energy, the dominant term)
but add decoder fan-out and duplicated precharge circuitry.  The paper
"used CACTI to determine the optimal number of banks" (§2.1, §4.1); this
module reproduces that step as a direct search over power-of-two bank
counts, scoring each candidate with the Kamble-Ghose read energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.utils.bitops import is_power_of_two


@dataclass(frozen=True)
class ArrayGeometry:
    """A banked SRAM array: ``banks`` banks of ``rows`` x ``cols`` bits."""

    rows: int
    cols: int
    banks: int = 1

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1 or self.banks < 1:
            raise ConfigurationError(
                f"invalid array geometry {self.rows}x{self.cols}x{self.banks}"
            )

    @property
    def total_bits(self) -> int:
        return self.rows * self.cols * self.banks

    @property
    def address_bits(self) -> int:
        """Row-decoder plus bank-select address width."""
        return max(1, (self.rows * self.banks - 1).bit_length())


def optimal_banking(
    rows: int,
    cols: int,
    tech,
    max_banks: int = 64,
    bits_read: int | None = None,
) -> ArrayGeometry:
    """Choose the power-of-two bank count minimising read energy.

    Mirrors the CACTI Ndbl exploration: candidate bank counts divide the
    rows; the per-access read energy of each candidate (computed with the
    Kamble-Ghose model) decides the winner.  Ties go to fewer banks (less
    area and simpler wiring).
    """
    # Imported here to avoid a circular import with kamble_ghose.
    from repro.energy.kamble_ghose import SRAMArray, array_read_energy

    if not is_power_of_two(rows):
        raise ConfigurationError(f"rows must be a power of two, got {rows}")

    best: ArrayGeometry | None = None
    best_energy = float("inf")
    banks = 1
    while banks <= max_banks and banks <= rows:
        geometry = ArrayGeometry(rows=rows // banks, cols=cols, banks=banks)
        energy = array_read_energy(
            SRAMArray(geometry), tech, bits_read=bits_read
        )
        if energy < best_energy - 1e-24:
            best = geometry
            best_energy = energy
        banks *= 2
    assert best is not None
    return best
