"""Shared low-level helpers: bit manipulation, LRU tracking, text tables."""

from repro.utils.bitops import (
    bit_slice,
    block_address,
    extract_field,
    ilog2,
    is_power_of_two,
    mask,
)
from repro.utils.lru import LRUTracker
from repro.utils.text import format_percent, render_table

__all__ = [
    "LRUTracker",
    "bit_slice",
    "block_address",
    "extract_field",
    "format_percent",
    "ilog2",
    "is_power_of_two",
    "mask",
    "render_table",
]
