"""Plain-text rendering of result tables.

The benchmark harness regenerates the paper's tables and figures as text;
this module owns the formatting so every exhibit prints consistently.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_percent(fraction: float, digits: int = 1) -> str:
    """Format ``fraction`` (0..1) as a percentage string, e.g. ``'74.2%'``."""
    return f"{100.0 * fraction:.{digits}f}%"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Every cell is converted with ``str``; numeric alignment is right,
    text alignment is left, decided per column by inspecting the rows.
    """
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    numeric = [
        all(_looks_numeric(row[i]) for row in cells) if cells else False
        for i in range(len(headers))
    ]

    def fmt_row(row: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(row):
            parts.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def _looks_numeric(cell: str) -> bool:
    stripped = cell.rstrip("%MKG ").replace(",", "")
    if not stripped:
        return False
    try:
        float(stripped)
    except ValueError:
        return False
    return True
