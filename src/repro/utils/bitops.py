"""Bit-manipulation helpers used throughout the cache and filter models.

Addresses are plain Python integers.  All helpers are pure functions; the
hardware structures (caches, JETTYs) express their index/tag arithmetic in
terms of these primitives so the bit-level conventions live in one place.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Return log2 of ``value`` for exact powers of two.

    Raises :class:`ConfigurationError` otherwise — cache geometry in this
    package is always power-of-two sized, and a non-power-of-two indicates
    a misconfiguration rather than a math domain error.
    """
    if not is_power_of_two(value):
        raise ConfigurationError(f"expected a power of two, got {value!r}")
    return value.bit_length() - 1


def mask(n_bits: int) -> int:
    """Return an ``n_bits``-wide mask of ones (``mask(3) == 0b111``)."""
    if n_bits < 0:
        raise ConfigurationError(f"mask width must be >= 0, got {n_bits}")
    return (1 << n_bits) - 1


def bit_slice(value: int, low: int, width: int) -> int:
    """Extract ``width`` bits of ``value`` starting at bit ``low``.

    ``bit_slice(0b10110, low=1, width=3) == 0b011``.
    """
    if low < 0:
        raise ConfigurationError(f"bit offset must be >= 0, got {low}")
    return (value >> low) & mask(width)


def extract_field(address: int, offset_bits: int, index_bits: int) -> tuple[int, int, int]:
    """Split ``address`` into ``(tag, index, offset)`` fields.

    ``offset_bits`` select within a block, the next ``index_bits`` select a
    set, and the remainder is the tag.  This is the standard cache address
    decomposition used by both the caches and the exclude-JETTYs.
    """
    offset = bit_slice(address, 0, offset_bits)
    index = bit_slice(address, offset_bits, index_bits)
    tag = address >> (offset_bits + index_bits)
    return tag, index, offset


def block_address(address: int, offset_bits: int) -> int:
    """Return the block-aligned address number (address >> offset_bits)."""
    return address >> offset_bits
