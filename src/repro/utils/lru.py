"""A small least-recently-used ordering tracker for cache sets.

The tracker maintains a recency ordering over a fixed population of way
indices (0..ways-1).  It is deliberately independent of what is stored in
the ways so the cache model can reuse it for both data caches and
exclude-JETTY arrays.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class LRUTracker:
    """Track the recency order of ``ways`` slots.

    The internal list is ordered from most-recently-used (index 0) to
    least-recently-used (last index).  All operations are O(ways), which is
    fine because associativities in this package are small (<= 16).
    """

    __slots__ = ("_order",)

    def __init__(self, ways: int) -> None:
        if ways <= 0:
            raise ConfigurationError(f"LRUTracker needs >= 1 way, got {ways}")
        self._order: list[int] = list(range(ways))

    def touch(self, way: int) -> None:
        """Mark ``way`` as most recently used."""
        order = self._order
        if order[0] == way:  # already MRU — the common repeated-touch case
            return
        order.remove(way)
        order.insert(0, way)

    def retire(self, way: int) -> None:
        """Mark ``way`` as least recently used (its contents were freed).

        A deallocated way must become the preferred victim; leaving it at
        its old recency position would let the stale entry shield a live
        way from eviction.
        """
        order = self._order
        order.remove(way)
        order.append(way)

    def victim(self) -> int:
        """Return the least-recently-used way (does not reorder)."""
        return self._order[-1]

    def snapshot(self) -> list[int]:
        """The recency ordering as serialisable logical state."""
        return list(self._order)

    def restore(self, state: list[int]) -> None:
        """Adopt a previously snapshotted recency ordering."""
        if sorted(state) != sorted(self._order):
            raise ConfigurationError(
                f"LRU snapshot covers ways {sorted(state)}, "
                f"tracker has {sorted(self._order)}"
            )
        self._order = list(state)

    def mru(self) -> int:
        """Return the most-recently-used way."""
        return self._order[0]

    def order(self) -> tuple[int, ...]:
        """Return the current MRU-to-LRU ordering as a tuple."""
        return tuple(self._order)
